// Package core implements the FaSTCC contraction engine (paper Section 4):
// a 2D-tiled contraction-index-outer scheme. The output index space L×R is
// partitioned into NL×NR tiles; the inputs are sharded into per-tile
// open-addressing hash tables keyed by the contraction index; tile–tile
// contractions run as dynamically scheduled parallel tasks, each
// accumulating into a worker-local dense or sparse tile and draining into a
// worker-local chunked COO list that is finally concatenated by reference.
package core

import (
	"fmt"
	"math/bits"
	"time"

	"fastcc/internal/accum"
	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
	"fastcc/internal/scheduler"
)

// Triple is one output nonzero in matrixized coordinates.
type Triple struct {
	L, R uint64
	V    float64
}

// Config controls one contraction run. The zero value asks for model-chosen
// tiles and accumulator on the Auto platform with GOMAXPROCS workers.
type Config struct {
	// Threads is the worker count; <= 0 means GOMAXPROCS.
	Threads int
	// TileL/TileR override the model's tile sizes when nonzero. TileR must
	// be a power of two when a dense accumulator is used.
	TileL, TileR uint64
	// Accum forces the accumulator kind; AccumAuto defers to the model.
	Accum model.AccumKind
	// Platform supplies cache and core parameters for the model; the zero
	// value selects model.Auto().
	Platform model.Platform
	// Counters, when non-nil, collects data-access statistics.
	Counters *metrics.Counters
	// Rep selects the input-tile representation: the paper's hash tables
	// (default) or the sorted-array ablation.
	Rep InputRep
}

// Stats reports what one contraction run did.
type Stats struct {
	Decision     model.Decision
	TileL, TileR uint64
	NL, NR       int
	Threads      int
	// Tasks is the number of tile-tile contractions executed (pairs of
	// nonempty input tiles).
	Tasks int
	// OutputNNZ is the number of output nonzeros produced.
	OutputNNZ int
	// Phase timings (the paper's four steps; drain time is inside Contract).
	BuildTime    time.Duration
	ContractTime time.Duration
	ConcatTime   time.Duration
}

// Contract runs the tiled-CO contraction O[l,r] = Σ_c L[l,c]·R[c,r] on
// matrixized operands and returns the output as a concatenated chunk list
// of triples (Algorithm 5/6).
func Contract(l, r *coo.Matrix, cfg Config) (*mempool.List[Triple], *Stats, error) {
	if cfg.Platform == (model.Platform{}) {
		cfg.Platform = model.Auto()
	}
	threads := scheduler.Workers(cfg.Threads)
	st := &Stats{Threads: threads}

	if l.ExtDim == 0 || r.ExtDim == 0 || l.CtrDim == 0 {
		return nil, nil, fmt.Errorf("core: zero-extent operand (L=%d, R=%d, C=%d)", l.ExtDim, r.ExtDim, l.CtrDim)
	}
	if l.CtrDim != r.CtrDim {
		return nil, nil, fmt.Errorf("core: contraction extents differ (%d vs %d)", l.CtrDim, r.CtrDim)
	}

	// Step 0: model decision (Algorithm 7), honoring overrides.
	in := model.Inputs{
		NNZL: int64(l.NNZ()), NNZR: int64(r.NNZ()),
		LDim: l.ExtDim, RDim: r.ExtDim, CDim: l.CtrDim,
	}
	dec, err := model.Decide(in, cfg.Platform)
	if err != nil {
		return nil, nil, err
	}
	dec = dec.ForceKind(cfg.Accum, in, cfg.Platform)
	if cfg.TileL != 0 {
		dec.TileL = cfg.TileL
	}
	if cfg.TileR != 0 {
		dec.TileR = cfg.TileR
	}
	st.Decision = dec
	tl, tr := dec.TileL, dec.TileR
	if tl == 0 || tr == 0 {
		return nil, nil, fmt.Errorf("core: zero tile size %dx%d", tl, tr)
	}
	// Bound the sides first so the tl*tr product below cannot wrap uint64.
	if tl > 1<<31 || tr > 1<<31 {
		return nil, nil, fmt.Errorf("core: tile side exceeds 2^31 (%dx%d)", tl, tr)
	}
	if dec.Kind == model.AccumDense {
		if tr&(tr-1) != 0 {
			return nil, nil, fmt.Errorf("core: dense accumulator needs power-of-two TileR, got %d", tr)
		}
		if tl*tr > 1<<31 {
			return nil, nil, fmt.Errorf("core: dense tile %dx%d exceeds addressable positions", tl, tr)
		}
	}
	st.TileL, st.TileR = tl, tr
	nl := int((l.ExtDim + tl - 1) / tl)
	nr := int((r.ExtDim + tr - 1) / tr)
	st.NL, st.NR = nl, nr

	// Step 1: parallel construction of the tiled input tables, half the
	// workers on each operand (Section 4.2).
	t0 := time.Now()
	var hl, hr []*hashtable.SliceTable
	var sl, sr []*sortedTile
	if cfg.Rep == RepSorted {
		sl = make([]*sortedTile, nl)
		sr = make([]*sortedTile, nr)
		scheduler.Teams(threads,
			func(w, size int) { buildSortedTileTables(sl, l, tl, w, size) },
			func(w, size int) { buildSortedTileTables(sr, r, tr, w, size) },
		)
	} else {
		hl = make([]*hashtable.SliceTable, nl)
		hr = make([]*hashtable.SliceTable, nr)
		scheduler.Teams(threads,
			func(w, size int) { buildTileTables(hl, l, tl, w, size) },
			func(w, size int) { buildTileTables(hr, r, tr, w, size) },
		)
	}
	st.BuildTime = time.Since(t0)

	// Steps 2-4: tile-task contraction, accumulate, drain.
	t0 = time.Now()
	var nonEmptyL, nonEmptyR []int
	if cfg.Rep == RepSorted {
		nonEmptyL = nonEmptySorted(sl)
		nonEmptyR = nonEmptySorted(sr)
	} else {
		nonEmptyL = nonEmptyTiles(hl)
		nonEmptyR = nonEmptyTiles(hr)
	}
	tasks := len(nonEmptyL) * len(nonEmptyR)
	st.Tasks = tasks

	pools := make([]*mempool.Pool[Triple], threads)
	workers := make([]*worker, threads)
	sparseHint := tileNNZHint(dec, tl, tr)
	scheduler.Pool(threads, tasks, func(w, task int) {
		wk := workers[w]
		if wk == nil {
			wk = newWorker(dec.Kind, tl, tr, sparseHint)
			workers[w] = wk
			pools[w] = mempool.New[Triple](0)
		}
		i := nonEmptyL[task/len(nonEmptyR)]
		j := nonEmptyR[task%len(nonEmptyR)]
		if cfg.Rep == RepSorted {
			contractTilePairSorted(sl[i], sr[j], uint64(i)*tl, uint64(j)*tr, wk, pools[w], cfg.Counters)
		} else {
			contractTilePair(hl[i], hr[j], uint64(i)*tl, uint64(j)*tr, wk, pools[w], cfg.Counters)
		}
	})
	st.ContractTime = time.Since(t0)

	// Final step: concatenate thread-local lists by pointer movement.
	t0 = time.Now()
	out := mempool.Concat(pools...)
	st.ConcatTime = time.Since(t0)
	st.OutputNNZ = out.Len()
	cfg.Counters.AddOutput(int64(out.Len()))
	if dec.Kind == model.AccumDense {
		cfg.Counters.MaxWorkspace(int64(tl) * int64(tr) * int64(threads))
	}
	return out, st, nil
}

// worker holds the per-worker reusable accumulator.
type worker struct {
	acc accum.Accumulator
}

func newWorker(kind model.AccumKind, tl, tr uint64, sparseHint int) *worker {
	switch kind {
	case model.AccumSparse:
		return &worker{acc: accum.NewSparse(sparseHint)}
	default:
		return &worker{acc: accum.NewDense(uint32(tl), uint32(tr))}
	}
}

// tileNNZHint sizes the sparse accumulator from the model's expected
// nonzeros per tile, bounded to keep initial allocations modest.
func tileNNZHint(dec model.Decision, tl, tr uint64) int {
	e := dec.PNonzero * float64(tl) * float64(tr)
	switch {
	case e < 64:
		return 64
	case e > 1<<22:
		return 1 << 22
	default:
		return int(e)
	}
}

// buildTileTables builds the per-tile hash tables this worker owns
// (ownership i mod teamSize == w) by scanning the whole operand and
// filtering — the paper's thread-local construction scheme. Workers write
// disjoint slots of tables, so no synchronization is needed beyond the
// team barrier.
//
//fastcc:hotpath
func buildTileTables(tables []*hashtable.SliceTable, m *coo.Matrix, tile uint64, w, teamSize int) {
	nnz := m.NNZ()
	hint := 0
	if len(tables) > 0 {
		hint = nnz / len(tables)
	}
	// Tile sides are powers of two whenever the model chose them; replace
	// the division in the hot filter loop with a shift in that case.
	shift := -1
	if tile&(tile-1) == 0 {
		shift = bits.TrailingZeros64(tile)
	}
	mask := tile - 1
	for k := 0; k < nnz; k++ {
		ext := m.Ext[k]
		var i int
		var intra uint32
		if shift >= 0 {
			i = int(ext >> shift)
			intra = uint32(ext & mask)
		} else {
			i = int(ext / tile)
			intra = uint32(ext - uint64(i)*tile)
		}
		if i%teamSize != w {
			continue
		}
		t := tables[i]
		if t == nil {
			t = hashtable.NewSliceTable(hint)
			tables[i] = t
		}
		t.Insert(m.Ctr[k], intra, m.Val[k])
	}
}

// nonEmptyTiles lists the indices of tiles holding at least one nonzero.
func nonEmptyTiles(tables []*hashtable.SliceTable) []int {
	out := make([]int, 0, len(tables))
	for i, t := range tables {
		if t != nil && t.Len() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// contractTilePair computes one output tile (Algorithm 6): co-iterate the
// contraction keys of the two input tiles, form the outer product of the
// matching slices into the worker's accumulator, then drain to the
// worker-local COO list with global coordinates restored.
//
//fastcc:hotpath
func contractTilePair(hl, hr *hashtable.SliceTable, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters) {

	// Iterate the table with fewer distinct keys and probe the other: the
	// intersection is the same, the query count smaller.
	probeInto := hr
	iter := hl
	swapped := false
	if hr.Len() < hl.Len() {
		iter, probeInto = hr, hl
		swapped = true
	}
	var queries, volume, updates int64
	// Devirtualize the accumulator for the upsert-dominated inner loops:
	// the interface call would otherwise sit on every multiply-accumulate.
	dense, _ := wk.acc.(*accum.Dense)
	sparse, _ := wk.acc.(*accum.Sparse)
	iter.ForEach(func(c uint64, ips []hashtable.Pair) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		queries++
		pps := probeInto.Lookup(c)
		if pps == nil {
			return
		}
		volume += int64(len(ips)) + int64(len(pps))
		updates += int64(len(ips)) * int64(len(pps))
		lps, rps := ips, pps
		if swapped {
			// iter is the right tile: ips are r-indices, pps l-indices.
			lps, rps = pps, ips
		}
		switch {
		case dense != nil:
			for _, lp := range lps {
				lv, li := lp.Val, lp.Idx
				for _, rp := range rps {
					dense.Upsert(li, rp.Idx, lv*rp.Val)
				}
			}
		case sparse != nil:
			for _, lp := range lps {
				lv, li := lp.Val, lp.Idx
				for _, rp := range rps {
					sparse.Upsert(li, rp.Idx, lv*rp.Val)
				}
			}
		default:
			acc := wk.acc
			for _, lp := range lps {
				lv, li := lp.Val, lp.Idx
				for _, rp := range rps {
					acc.Upsert(li, rp.Idx, lv*rp.Val)
				}
			}
		}
	})
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
	wk.acc.Drain(func(l, r uint32, v float64) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		pool.Append(Triple{L: baseL + uint64(l), R: baseR + uint64(r), V: v})
	})
}
