// Package core implements the FaSTCC contraction engine (paper Section 4):
// a 2D-tiled contraction-index-outer scheme. The output index space L×R is
// partitioned into NL×NR tiles; the inputs are sharded into per-tile
// open-addressing hash tables keyed by the contraction index; tile–tile
// contractions run as dynamically scheduled parallel tasks, each
// accumulating into a worker-local dense or sparse tile and draining into a
// worker-local chunked COO list that is finally concatenated by reference.
//
// The engine is split into three explicit stages so the Build phase can be
// amortized across repeated contractions (the prepared-operand API):
//
//   - plan: run the probabilistic model and resolve tile sizes (Algorithm 7);
//   - build: fetch or construct each operand's tile shard (Algorithm 5),
//     memoized per Operand under the ShardKey compatibility contract;
//   - execute: run the tile-task contraction, accumulate, drain, concat
//     (Algorithm 6).
package core

import (
	"context"
	"fmt"
	"time"

	"fastcc/internal/coo"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
	"fastcc/internal/scheduler"
)

// Triple is one output nonzero in matrixized coordinates.
type Triple struct {
	L, R uint64
	V    float64
}

// Config controls one contraction run. The zero value asks for model-chosen
// tiles and accumulator on the Auto platform with GOMAXPROCS workers.
type Config struct {
	// Threads is the worker count; <= 0 means GOMAXPROCS.
	Threads int
	// TileL/TileR override the model's tile sizes when nonzero. TileR must
	// be a power of two when a dense accumulator is used.
	TileL, TileR uint64
	// Accum forces the accumulator kind; AccumAuto defers to the model.
	Accum model.AccumKind
	// Platform supplies cache and core parameters for the model; the zero
	// value selects model.Auto().
	Platform model.Platform
	// Counters, when non-nil, collects data-access statistics.
	Counters *metrics.Counters
	// Rep selects the input-tile representation: the paper's hash tables
	// (default) or the sorted-array ablation.
	Rep InputRep
	// Kernel forces the tile microkernel; KernelAuto derives the
	// specialization from (Rep, accumulator kind). KernelGeneric is always
	// accepted (the pre-specialization loop, kept for baseline comparison);
	// a specialized id must match the run's rep/accumulator or plan fails.
	Kernel model.KernelID
	// CacheBudget bounds the process-wide shard cache in bytes: > 0 is an
	// explicit budget, < 0 disables eviction, 0 derives the default from the
	// platform LLC (L3Bytes × DefaultBudgetLLCMultiple). Applied — and
	// enforced — at the start of every run; the last run's setting wins.
	CacheBudget int64
	// SpillDir, when non-empty, enables the disk tier (spill.go): shards
	// the budget evicts are serialized there and reloaded at the next pin
	// instead of rebuilt. SpillBudget bounds the directory in bytes (<= 0
	// unlimited). Like CacheBudget, applied at the start of the run; an
	// EMPTY SpillDir leaves the process-wide spill configuration unchanged
	// (use ConfigureSpill to disable the tier explicitly).
	SpillDir    string
	SpillBudget int64
	// Tenant, when non-empty, charges every shard this run builds or reuses
	// to the named tenant's cache account (tenant.go): the shard bytes count
	// against the tenant's quota, quota overruns are settled by evicting the
	// tenant's own cold shards when the run's pins drop, and the global
	// eviction policy prefers over-quota tenants' shards. Empty leaves the
	// run untenanted (shards unclaimed, global budget only).
	Tenant string
	// Context, when non-nil, cancels the run cooperatively: it is checked
	// between stages and at tile-task boundaries, and the run returns
	// Context.Err() wrapped.
	Context context.Context
}

func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// Stats reports what one contraction run did.
type Stats struct {
	Decision     model.Decision
	TileL, TileR uint64
	NL, NR       int
	Threads      int
	// Tasks is the number of tile-tile contractions executed (pairs of
	// nonempty input tiles).
	Tasks int
	// BlockL, BlockR are the LLC super-block sides (in non-empty tiles) the
	// contract schedule used; Blocks is the resulting block-task count. A
	// worker claims whole blocks and walks them L-outer/R-inner, so each
	// R panel is fetched from DRAM once and reused BlockL times.
	BlockL, BlockR, Blocks int
	// OutputNNZ is the number of output nonzeros produced.
	OutputNNZ int
	// ShardReusedL/ShardReusedR report that the operand's tile shard was
	// served from an Operand's cache instead of being built; BuildTime is
	// zero when both are true.
	ShardReusedL, ShardReusedR bool
	// Phase timings (the paper's four steps; drain time is inside Contract).
	BuildTime    time.Duration
	ContractTime time.Duration
	ConcatTime   time.Duration
}

// outputChunks recycles the chunk storage of output triple lists across
// runs; RecycleOutput returns a consumed run's chunks here.
var outputChunks = mempool.NewChunkCache[Triple](0)

// accKey is the accumulator-shape compatibility key for worker recycling.
type accKey struct {
	kind   model.AccumKind
	tl, tr uint64
}

// workerFree parks per-worker accumulators between runs so repeated
// contractions with the same tile shape stop reallocating tile-sized
// buffers.
var workerFree = mempool.NewFreelist[accKey, *worker](0)

// Contract runs the tiled-CO contraction O[l,r] = Σ_c L[l,c]·R[c,r] on
// matrixized operands and returns the output as a concatenated chunk list
// of triples. The operands are sharded transiently — the shards are dropped
// before returning, so one-shot contractions leave nothing charged to the
// shard cache; callers that contract the same operand repeatedly should
// wrap it once with NewOperand and use ContractOperands.
func Contract(l, r *coo.Matrix, cfg Config) (*mempool.List[Triple], *Stats, error) {
	lo := NewOperand(l)
	ro := lo
	if r != l {
		ro = NewOperand(r)
	}
	defer lo.Close()
	if ro != lo {
		defer ro.Close()
	}
	return ContractOperands(lo, ro, cfg)
}

// ContractOperands is Contract over shard-caching operands: each side's
// Build phase is skipped when the operand already holds a shard compatible
// with this run's plan (same tile side and representation). Passing the
// same *Operand on both sides of a self-contraction shards it exactly once.
func ContractOperands(l, r *Operand, cfg Config) (*mempool.List[Triple], *Stats, error) {
	if cfg.Platform == (model.Platform{}) {
		cfg.Platform = model.Auto()
	}
	// (Re)apply this run's shard-cache budget and spill configuration
	// before any build charges the cache or any eviction could spill.
	if err := configureSpill(cfg.SpillDir, cfg.SpillBudget); err != nil {
		return nil, nil, err
	}
	shardLRU.setBudget(resolveBudget(cfg.CacheBudget, cfg.Platform))
	threads := scheduler.Workers(cfg.Threads)
	st := &Stats{Threads: threads}

	dec, err := plan(l.Mat, r.Mat, cfg)
	if err != nil {
		return nil, nil, err
	}
	st.Decision = dec
	tl, tr := dec.TileL, dec.TileR
	st.TileL, st.TileR = tl, tr
	st.NL = int((l.Mat.ExtDim + tl - 1) / tl)
	st.NR = int((r.Mat.ExtDim + tr - 1) / tr)

	if err := cfg.ctx().Err(); err != nil {
		return nil, nil, canceled(err)
	}

	// Build stage: fetch or construct the two shards. BuildTime stays zero
	// on a full cache hit — the amortization the prepared-operand API
	// exists to deliver. Both shards come back pinned; the run-level pins
	// are released when the run ends (a self-contraction holds one pin on
	// its single shard), keeping eviction away from the tables until every
	// worker has also released its own guard pins.
	ls, rs, builtL, builtR := buildShards(l, r, ShardKey{Tile: tl, Rep: cfg.Rep}, ShardKey{Tile: tr, Rep: cfg.Rep}, threads, st) //fastcc:allow pinbracket -- on the self-contraction path rs aliases ls and carries a single pin, released by ls's deferred Unpin; the rs != ls guard below is the release for the two-shard path
	st.ShardReusedL, st.ShardReusedR = !builtL, !builtR
	if cfg.Tenant != "" {
		// Charge both shards to the run's tenant while the run pins protect
		// them, and settle the tenant's quota as the run's LAST deferred step
		// (registered before the Unpins, so it runs after them): once the
		// pins drop, the enforcement pass can see this run's own shards.
		claimShard(ls, cfg.Tenant, builtL)
		if rs != ls {
			claimShard(rs, cfg.Tenant, builtR)
		}
		defer enforceTenant(cfg.Tenant)
	}
	defer ls.Unpin()
	if rs != ls {
		defer rs.Unpin()
	}

	if err := cfg.ctx().Err(); err != nil {
		return nil, nil, canceled(err)
	}

	return execute(ls, rs, dec, threads, cfg, st)
}

// canceled wraps a context error so callers can errors.Is against
// context.Canceled / DeadlineExceeded while seeing the engine frame.
func canceled(err error) error {
	return fmt.Errorf("core: contraction canceled: %w", err)
}

// plan runs the model decision (Algorithm 7), applies overrides, and
// validates the resulting tile geometry.
func plan(l, r *coo.Matrix, cfg Config) (model.Decision, error) {
	if l.ExtDim == 0 || r.ExtDim == 0 || l.CtrDim == 0 {
		return model.Decision{}, fmt.Errorf("core: zero-extent operand (L=%d, R=%d, C=%d)", l.ExtDim, r.ExtDim, l.CtrDim)
	}
	if l.CtrDim != r.CtrDim {
		return model.Decision{}, fmt.Errorf("core: contraction extents differ (%d vs %d)", l.CtrDim, r.CtrDim)
	}
	in := model.Inputs{
		NNZL: int64(l.NNZ()), NNZR: int64(r.NNZ()),
		LDim: l.ExtDim, RDim: r.ExtDim, CDim: l.CtrDim,
	}
	dec, err := model.Decide(in, cfg.Platform)
	if err != nil {
		return model.Decision{}, err
	}
	dec = dec.ForceKind(cfg.Accum, in, cfg.Platform)
	if cfg.TileL != 0 {
		dec.TileL = cfg.TileL
	}
	if cfg.TileR != 0 {
		dec.TileR = cfg.TileR
	}
	tl, tr := dec.TileL, dec.TileR
	if tl == 0 || tr == 0 {
		return model.Decision{}, fmt.Errorf("core: zero tile size %dx%d", tl, tr)
	}
	// Bound the sides first so the tl*tr product below cannot wrap uint64.
	if tl > 1<<31 || tr > 1<<31 {
		return model.Decision{}, fmt.Errorf("core: tile side exceeds 2^31 (%dx%d)", tl, tr)
	}
	if dec.Kind == model.AccumDense {
		if tr&(tr-1) != 0 {
			return model.Decision{}, fmt.Errorf("core: dense accumulator needs power-of-two TileR, got %d", tr)
		}
		if tl*tr > 1<<31 {
			return model.Decision{}, fmt.Errorf("core: dense tile %dx%d exceeds addressable positions", tl, tr)
		}
	}
	if err := resolveKernel(&dec, cfg); err != nil {
		return model.Decision{}, err
	}
	return dec, nil
}

// buildShards fetches or builds both operands' shards. When both need
// building they share the worker budget (the paper's two build teams,
// Section 4.2); when one side is already cached, the other gets every
// worker. A self-contraction sharing one Operand with one key builds once.
func buildShards(l, r *Operand, keyL, keyR ShardKey, threads int, st *Stats) (ls, rs *Shard, builtL, builtR bool) {
	t0 := time.Now()
	if l == r && keyL == keyR {
		ls, builtL = l.Shard(keyL, threads)
		rs = ls
	} else {
		thL := (threads + 1) / 2
		thR := threads - thL
		if thR == 0 {
			thR = 1
		}
		if l.Cached(keyL) {
			thR = threads
		}
		if r.Cached(keyR) {
			thL = threads
		}
		done := make(chan struct{})
		go func() {
			rs, builtR = r.Shard(keyR, thR)
			close(done)
		}()
		ls, builtL = l.Shard(keyL, thL)
		<-done
	}
	if builtL || builtR {
		st.BuildTime = time.Since(t0)
	}
	return ls, rs, builtL, builtR
}

// execute runs the tile-task contraction over two built shards: steps 2-4
// of the paper's pipeline (contract, accumulate, drain) plus the final
// concatenation by reference.
func execute(ls, rs *Shard, dec model.Decision, threads int, cfg Config, st *Stats) (*mempool.List[Triple], *Stats, error) {
	tl, tr := dec.TileL, dec.TileR
	nonEmptyL := ls.NonEmpty()
	nonEmptyR := rs.NonEmpty()
	nL, nR := len(nonEmptyL), len(nonEmptyR)
	st.Tasks = nL * nR

	t0 := time.Now()
	pools := make([]*mempool.Pool[Triple], threads)
	workers := make([]*worker, threads)
	wkey := accKey{kind: dec.Kind, tl: tl, tr: tr}
	sparseHint := tileNNZHint(dec, tl, tr)

	// LLC-blocked schedule: the nL×nR task grid is cut into BL×BR
	// super-blocks sized so one block's input panels fit in a worker share
	// of the last-level cache (model.BlockShape). Workers claim whole blocks
	// — batched on the atomic ticket once blocks are plentiful — and walk
	// each block L-outer/R-inner, so a BR-tile R panel is streamed from DRAM
	// once and reused BL times from cache. The unblocked schedule this
	// replaces walked the grid i-major, re-streaming the entire R shard
	// through the LLC for every L tile.
	bl, br := model.BlockShape(cfg.Platform, ls.TileBytes(), rs.TileBytes(), nL, nR, threads)
	nbR := 0
	blocksTotal := 0
	if nL > 0 && nR > 0 {
		nbR = (nR + br - 1) / br
		blocksTotal = (nL + bl - 1) / bl * nbR
	}
	st.BlockL, st.BlockR, st.Blocks = bl, br, blocksTotal
	// Kernel dispatch is resolved HERE, once per run: every tile task below
	// calls the same direct function value out of kernelTable. The platform's
	// probe depth (hash kernels' batch width) is likewise hoisted.
	kern := selectKernel(dec.Kernel)
	probeBatch := cfg.Platform.ProbeBatch()
	ctx := cfg.ctx()
	// Per-worker shard pins: each pool worker pins both shards before its
	// first claim and releases on exit (deferred inside the scheduler, so
	// cancellation and panics cannot leak a pin). The run-level pins in
	// ContractOperands already keep the shards alive; the guard makes the
	// reader set explicit — PinnedBytes reflects active workers, and the
	// refcount, not the caller's discipline, is what stands between a
	// concurrent Drop and the tables contractTilePair is reading.
	guard := scheduler.Guard{
		Acquire: func(int) { ls.mustPin(); rs.mustPin() },
		Release: func(int) { rs.Unpin(); ls.Unpin() },
	}
	err := scheduler.PoolCtxBatchGuarded(ctx, threads, blocksTotal, scheduler.ClaimBatch(blocksTotal, threads), guard, func(w, b int) {
		wk := workers[w]
		if wk == nil {
			if parked, ok := workerFree.Get(wkey); ok {
				wk = parked
			} else {
				wk = newWorker(dec.Kind, tl, tr, sparseHint)
				// Bind the fresh accumulator to its shape key so a future
				// Put under any other key is a provenance panic in checked
				// builds, not a wrong-shaped vend.
				workerFree.Note(wkey, wk)
			}
			workers[w] = wk
			pools[w] = outputChunks.NewPool()
		}
		bi, bj := b/nbR, b%nbR
		iEnd, jEnd := (bi+1)*bl, (bj+1)*br
		if iEnd > nL {
			iEnd = nL
		}
		if jEnd > nR {
			jEnd = nR
		}
		var tasksDone int64
		for ii := bi * bl; ii < iEnd; ii++ {
			i := nonEmptyL[ii]
			baseL := uint64(i) * tl
			for jj := bj * br; jj < jEnd; jj++ {
				// Cancellation is observed at tile-task boundaries even
				// inside a block, matching the batched claim's latency of
				// one task, not one block.
				if ctx.Err() != nil {
					cfg.Counters.AddKernelTasks(int(dec.Kernel), tasksDone)
					return
				}
				j := nonEmptyR[jj]
				kern(ls, rs, i, j, baseL, uint64(j)*tr, wk, pools[w], cfg.Counters, probeBatch)
				tasksDone++
			}
		}
		cfg.Counters.AddKernelTasks(int(dec.Kernel), tasksDone)
	})
	// Accumulators drain at the end of every task, so canceled or not they
	// are empty and safe to park for the next run.
	for _, wk := range workers {
		if wk != nil {
			workerFree.Put(wkey, wk)
		}
	}
	if err != nil {
		// Partial output is discarded; hand its chunks straight back.
		outputChunks.Release(mempool.Concat(pools...))
		return nil, nil, canceled(err)
	}
	st.ContractTime = time.Since(t0)

	// Final step: concatenate thread-local lists by pointer movement.
	t0 = time.Now()
	out := mempool.Concat(pools...)
	st.ConcatTime = time.Since(t0)
	st.OutputNNZ = out.Len()
	cfg.Counters.AddOutput(int64(out.Len()))
	if dec.Kind == model.AccumDense {
		cfg.Counters.MaxWorkspace(int64(tl) * int64(tr) * int64(threads))
	}
	return out, st, nil
}

// RecycleOutput returns the chunk storage of a contraction result to the
// engine's chunk cache so the next run reuses it. Call only after every
// triple has been copied out of the list; the chunks are overwritten by
// future runs.
func RecycleOutput(l *mempool.List[Triple]) { outputChunks.Release(l) }
