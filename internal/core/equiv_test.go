package core

import (
	"math/rand"
	"testing"

	"fastcc/internal/coo"
	"fastcc/internal/model"
	"fastcc/internal/ref"
)

// The tests in this file pin the partitioned-build + sealed-shard +
// blocked-schedule pipeline against the reference contraction and against
// itself: every {representation × accumulator} combination must produce the
// same output, bit for bit, and a reused shard must reproduce the cold run
// exactly. Values are small integers, so float64 accumulation is exact and
// "equal" means identical bits regardless of accumulation order.

// collectSorted contracts and returns the output as a sorted tensor.
func collectSorted(t *testing.T, l, r *coo.Matrix, cfg Config) *coo.Tensor {
	t.Helper()
	out, _, err := Contract(l, r, cfg)
	if err != nil {
		t.Fatalf("Contract(%+v): %v", cfg, err)
	}
	var ls, rs []uint64
	var vs []float64
	out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
	tn := ref.TriplesToMatrixTensor(ls, rs, vs, l.ExtDim, r.ExtDim)
	tn.Sort()
	return tn
}

// tinyLLC forces small super-blocks so the blocked schedule has interior
// block boundaries even on test-sized grids (a 32 KiB L3 puts only a couple
// of tiles in each panel budget).
var tinyLLC = model.Platform{Name: "tiny-llc-test", Cores: 4, L3Bytes: 32 << 10, WordBytes: 8}

func TestEquivalenceAcrossRepAndAccum(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	// 300/17 and 260/17 leave partial edge tiles, and the non-empty tile
	// counts do not divide the block sides chosen from tinyLLC.
	l := randomMatrix(rng, 300, 40, 2500)
	r := randomMatrix(rng, 260, 40, 2000)
	want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
	want.Sort()

	type combo struct {
		name string
		rep  InputRep
		acc  model.AccumKind
	}
	combos := []combo{
		{"hash/dense", RepHash, model.AccumDense},
		{"hash/sparse", RepHash, model.AccumSparse},
		{"sorted/dense", RepSorted, model.AccumDense},
		{"sorted/sparse", RepSorted, model.AccumSparse},
	}
	outs := make([]*coo.Tensor, len(combos))
	for k, c := range combos {
		outs[k] = collectSorted(t, l, r, Config{
			Threads: 4, TileL: 17, TileR: 32, Accum: c.acc, Rep: c.rep,
			Platform: tinyLLC,
		})
		if !coo.Equal(outs[k], want) {
			t.Fatalf("%s: result differs from reference", c.name)
		}
	}
	// Pairwise bit-for-bit: same sorted coordinates and identical value bits.
	for k := 1; k < len(outs); k++ {
		if !coo.Equal(outs[0], outs[k]) {
			t.Fatalf("%s vs %s: outputs differ", combos[0].name, combos[k].name)
		}
		for i := range outs[0].Vals {
			if outs[0].Vals[i] != outs[k].Vals[i] {
				t.Fatalf("%s vs %s: value bits differ at %d", combos[0].name, combos[k].name, i)
			}
		}
	}
}

func TestBlockedScheduleMatchesAcrossThreadsAndPlatforms(t *testing.T) {
	// The block shape depends on the platform and worker count; the output
	// must not. Partial edge blocks (counts not dividing block sides) are
	// forced by the tiny-LLC platform.
	rng := rand.New(rand.NewSource(55))
	l := randomMatrix(rng, 500, 60, 4000)
	r := randomMatrix(rng, 470, 60, 3500)
	base := collectSorted(t, l, r, Config{Threads: 1, TileL: 32, TileR: 32})
	for _, threads := range []int{2, 5, 8} {
		for _, p := range []model.Platform{tinyLLC, model.Desktop8} {
			got := collectSorted(t, l, r, Config{Threads: threads, TileL: 32, TileR: 32, Platform: p})
			if !coo.Equal(base, got) {
				t.Fatalf("threads=%d platform=%s: blocked schedule changed the result", threads, p.Name)
			}
			for i := range base.Vals {
				if base.Vals[i] != got.Vals[i] {
					t.Fatalf("threads=%d platform=%s: value bits differ at %d", threads, p.Name, i)
				}
			}
		}
	}
}

func TestShardReuseBitIdentity(t *testing.T) {
	// A warm run over cached shards must reproduce the cold run bit for bit
	// and report the reuse (Build == 0, sealed tables served from cache).
	rng := rand.New(rand.NewSource(77))
	lm := randomMatrix(rng, 400, 50, 3000)
	rm := randomMatrix(rng, 350, 50, 2800)
	for _, rep := range []InputRep{RepHash, RepSorted} {
		l, r := NewOperand(lm), NewOperand(rm)
		cfg := Config{Threads: 4, TileL: 64, TileR: 64, Rep: rep, Platform: tinyLLC}
		run := func() (*coo.Tensor, *Stats) {
			out, st, err := ContractOperands(l, r, cfg)
			if err != nil {
				t.Fatalf("rep=%v: %v", rep, err)
			}
			var ls, rs []uint64
			var vs []float64
			out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
			tn := ref.TriplesToMatrixTensor(ls, rs, vs, lm.ExtDim, rm.ExtDim)
			tn.Sort()
			return tn, st
		}
		cold, coldSt := run()
		warm, warmSt := run()
		if coldSt.ShardReusedL || coldSt.ShardReusedR {
			t.Fatalf("rep=%v: cold run claims shard reuse", rep)
		}
		if !warmSt.ShardReusedL || !warmSt.ShardReusedR || warmSt.BuildTime != 0 {
			t.Fatalf("rep=%v: warm run did not reuse shards (%+v)", rep, warmSt)
		}
		if warmSt.Blocks <= 0 || warmSt.BlockL <= 0 || warmSt.BlockR <= 0 {
			t.Fatalf("rep=%v: block stats not populated: %+v", rep, warmSt)
		}
		if !coo.Equal(cold, warm) {
			t.Fatalf("rep=%v: warm output differs from cold", rep)
		}
		for i := range cold.Vals {
			if cold.Vals[i] != warm.Vals[i] {
				t.Fatalf("rep=%v: warm value bits differ at %d", rep, i)
			}
		}
	}
}

// TestEvictionEquivalence is the lifecycle acceptance test: contract,
// force-evict everything with a 1-byte budget, contract again over the
// rebuilt shards, and demand bit-identical output — for every
// {representation × accumulator} combination, plus a run whose own
// adversarially small CacheBudget forces rebuilds on every call.
func TestEvictionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	lm := randomMatrix(rng, 300, 40, 2500)
	rm := randomMatrix(rng, 260, 40, 2000)

	type combo struct {
		name string
		rep  InputRep
		acc  model.AccumKind
	}
	combos := []combo{
		{"hash/dense", RepHash, model.AccumDense},
		{"hash/sparse", RepHash, model.AccumSparse},
		{"sorted/dense", RepSorted, model.AccumDense},
		{"sorted/sparse", RepSorted, model.AccumSparse},
	}
	for _, c := range combos {
		l, r := NewOperand(lm), NewOperand(rm)
		cfg := Config{Threads: 4, TileL: 17, TileR: 32, Accum: c.acc, Rep: c.rep, Platform: tinyLLC}
		run := func(cfg Config) (*coo.Tensor, *Stats) {
			out, st, err := ContractOperands(l, r, cfg)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			var ls, rs []uint64
			var vs []float64
			out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
			tn := ref.TriplesToMatrixTensor(ls, rs, vs, lm.ExtDim, rm.ExtDim)
			tn.Sort()
			return tn, st
		}
		cold, _ := run(cfg)

		// Force-evict every resident shard, then rebuild.
		before := CacheStats()
		SetShardBudget(1)
		if after := CacheStats(); after.Evictions <= before.Evictions {
			t.Fatalf("%s: 1-byte budget evicted nothing (%d -> %d)", c.name, before.Evictions, after.Evictions)
		}
		rebuilt, st := run(cfg)
		if st.ShardReusedL || st.ShardReusedR {
			t.Fatalf("%s: post-eviction run claims shard reuse", c.name)
		}
		assertBitIdentical(t, c.name+" rebuilt", cold, rebuilt)

		// Adversarially small per-run budget: every run rebuilds both shards
		// (they are evicted as soon as the run's pins drop), and the result
		// must still match.
		tight := cfg
		tight.CacheBudget = 1
		squeezed, _ := run(tight)
		assertBitIdentical(t, c.name+" squeezed", cold, squeezed)

		l.Close()
		r.Close()
	}
	SetShardBudget(-1)
}

// assertBitIdentical demands the same sorted coordinates and identical
// float64 bit patterns.
func assertBitIdentical(t *testing.T, what string, want, got *coo.Tensor) {
	t.Helper()
	if !coo.Equal(want, got) {
		t.Fatalf("%s: output differs", what)
	}
	for i := range want.Vals {
		if want.Vals[i] != got.Vals[i] {
			t.Fatalf("%s: value bits differ at %d", what, i)
		}
	}
}

// FuzzContractTiling throws arbitrary tile geometries at the pipeline —
// including tile sides that do not divide the extents and non-empty counts
// that do not divide the block sides — and checks both representations
// against the reference. Seeds pin the partial-edge-block cases; the budget
// seeds force mid-sequence eviction (shards reclaimed between the hash and
// sorted runs) through adversarially small CacheBudget values; the spill
// seeds route those evictions through the disk tier (including budgets tiny
// enough that the spill write itself fails over budget and falls back),
// so reload, adoption-miss and fallback paths all fuzz under arbitrary
// non-dividing tile geometry.
func FuzzContractTiling(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(90), uint16(30), uint16(7), uint16(13), uint16(600), uint16(0), uint16(0))
	f.Add(int64(2), uint16(257), uint16(129), uint16(17), uint16(16), uint16(16), uint16(900), uint16(0), uint16(0)) // pow2 tiles, odd extents
	f.Add(int64(3), uint16(64), uint16(64), uint16(8), uint16(64), uint16(64), uint16(200), uint16(0), uint16(0))    // single tile
	f.Add(int64(4), uint16(500), uint16(3), uint16(50), uint16(1), uint16(1), uint16(800), uint16(0), uint16(0))     // 1x1 tiles, skewed grid
	f.Add(int64(5), uint16(33), uint16(470), uint16(25), uint16(10), uint16(100), uint16(700), uint16(0), uint16(0)) // blocks clip at both edges
	f.Add(int64(6), uint16(100), uint16(90), uint16(30), uint16(7), uint16(13), uint16(600), uint16(1), uint16(0))   // 1-byte budget: evict everything
	f.Add(int64(7), uint16(257), uint16(129), uint16(17), uint16(16), uint16(16), uint16(900), uint16(4096), uint16(0))
	// Batched-probe boundary: ~62 distinct contraction keys per tile — not a
	// multiple of the probe batch width — so LookupBatch's remainder chunk is
	// exercised on the hash-rep leg of every fuzz execution of this seed.
	f.Add(int64(8), uint16(120), uint16(110), uint16(61), uint16(40), uint16(40), uint16(800), uint16(0), uint16(0))
	// Disk-tier seeds: 1-byte cache budget spills every cold shard, with
	// non-dividing tile sides so partial remainder tiles round-trip through
	// the spill encoding. Seed 10's 48-byte spill budget cannot hold any
	// real shard image — every spill attempt fails over budget and must
	// fall back to plain eviction + rebuild.
	f.Add(int64(9), uint16(100), uint16(90), uint16(30), uint16(7), uint16(13), uint16(600), uint16(1), uint16(32768))
	f.Add(int64(10), uint16(257), uint16(129), uint16(17), uint16(23), uint16(31), uint16(900), uint16(1), uint16(48))
	f.Fuzz(func(t *testing.T, seed int64, extL16, extR16, ctr16, tl16, tr16, nnz16, budget16, spill16 uint16) {
		extL := uint64(extL16%1000) + 1
		extR := uint64(extR16%1000) + 1
		ctr := uint64(ctr16%100) + 1
		tileL := uint64(tl16%200) + 1
		tileR := uint64(tr16%200) + 1
		nnz := int(nnz16 % 2000)
		// 0 keeps eviction out of the picture (unlimited); anything else is
		// a byte budget small enough to churn test-sized shards.
		budget := int64(-1)
		if budget16 != 0 {
			budget = int64(budget16)
		}
		// Nonzero spill16 enables the disk tier with that byte budget for
		// this execution only; corrupt round trips are impossible here, so
		// whatever the geometry, the outputs below must stay bit-identical.
		if spill16 != 0 {
			if err := ConfigureSpill(t.TempDir(), int64(spill16), false); err != nil {
				t.Fatalf("ConfigureSpill: %v", err)
			}
			defer func() {
				if err := ConfigureSpill("", 0, false); err != nil {
					t.Errorf("disabling spill: %v", err)
				}
			}()
		}
		rng := rand.New(rand.NewSource(seed))
		l := randomMatrix(rng, extL, ctr, nnz)
		r := randomMatrix(rng, extR, ctr, nnz)
		want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), extL, extR)
		want.Sort()
		var first *coo.Tensor
		for _, rep := range []InputRep{RepHash, RepSorted} {
			// Sparse accumulator: no power-of-two TileR constraint, so every
			// fuzzed geometry is legal.
			out, _, err := Contract(l, r, Config{
				Threads: 3, TileL: tileL, TileR: tileR,
				Accum: model.AccumSparse, Rep: rep, Platform: tinyLLC,
				CacheBudget: budget,
			})
			if err != nil {
				t.Fatalf("rep=%v tile=%dx%d: %v", rep, tileL, tileR, err)
			}
			var ls, rs []uint64
			var vs []float64
			out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
			got := ref.TriplesToMatrixTensor(ls, rs, vs, extL, extR)
			got.Sort()
			if !coo.Equal(got, want) {
				t.Fatalf("rep=%v tile=%dx%d: mismatch vs reference", rep, tileL, tileR)
			}
			if first == nil {
				first = got
			} else {
				for i := range first.Vals {
					if first.Vals[i] != got.Vals[i] {
						t.Fatalf("tile=%dx%d: hash and sorted reps differ in value bits", tileL, tileR)
					}
				}
			}
		}
	})
}
