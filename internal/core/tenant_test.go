package core

import (
	"math/rand"
	"testing"
)

// The tenant-accounting tests pin the charging protocol of tenant.go:
// claims charge a shard's full bytes to each claiming tenant, quota
// enforcement retires only that tenant's cold shards, and the global
// eviction policy squeezes over-quota tenants before anyone else. The
// cache is process-global, so tests use fresh tenant IDs and delete their
// accounts on the way out.

func tenantCleanup(t *testing.T, ids ...string) {
	t.Helper()
	t.Cleanup(func() {
		for _, id := range ids {
			DropTenant(id)
		}
		SetShardBudget(-1)
	})
}

func TestTenantClaimChargesOncePerShard(t *testing.T) {
	tenantCleanup(t, "claim-a")
	op := lifecycleOperand(101)
	defer op.Close()
	key := ShardKey{Tile: 32, Rep: RepHash}

	s, built := op.Shard(key, 2)
	claimShard(s, "claim-a", built)
	snap, ok := TenantStats("claim-a")
	if !ok {
		t.Fatal("no account after a claim")
	}
	if snap.Bytes != s.bytes || snap.Shards != 1 || snap.Misses != 1 {
		t.Fatalf("after build: %v, want bytes=%d shards=1 misses=1", snap, s.bytes)
	}
	if snap.PinnedBytes != s.bytes {
		t.Fatalf("PinnedBytes=%d with the builder pin held, want %d", snap.PinnedBytes, s.bytes)
	}

	// A second fetch of the same shard is a hit and must not double-charge.
	s2, built2 := op.Shard(key, 2)
	claimShard(s2, "claim-a", built2)
	snap, _ = TenantStats("claim-a")
	if snap.Bytes != s.bytes || snap.Shards != 1 || snap.Hits != 1 {
		t.Fatalf("after hit: %v, want unchanged bytes=%d shards=1 hits=1", snap, s.bytes)
	}
	s2.Unpin()
	s.Unpin()

	// Dropping the operand retires the shard and must uncharge the claim.
	op.Close()
	snap, _ = TenantStats("claim-a")
	if snap.Bytes != 0 || snap.Shards != 0 {
		t.Fatalf("after Close: %v, want zero charge", snap)
	}
}

func TestTenantQuotaEvictsOwnColdShards(t *testing.T) {
	tenantCleanup(t, "quota-a")
	op := lifecycleOperand(103)
	defer op.Close()
	k1 := ShardKey{Tile: 32, Rep: RepHash}
	k2 := ShardKey{Tile: 64, Rep: RepHash}

	s1, b1 := op.Shard(k1, 2)
	claimShard(s1, "quota-a", b1)
	s2, b2 := op.Shard(k2, 2)
	claimShard(s2, "quota-a", b2)

	// Both pinned: a 1-byte quota cannot touch them.
	SetTenantQuota("quota-a", 1)
	if !op.Cached(k1) || !op.Cached(k2) {
		t.Fatal("quota enforcement evicted a pinned shard")
	}
	snap, _ := TenantStats("quota-a")
	if snap.Bytes != s1.bytes+s2.bytes {
		t.Fatalf("pinned charge %d, want %d", snap.Bytes, s1.bytes+s2.bytes)
	}

	// Pins dropped: the run-exit enforcement path must squeeze the account
	// back under quota (here: evict everything).
	s1.Unpin()
	s2.Unpin()
	enforceTenant("quota-a")
	snap, _ = TenantStats("quota-a")
	if snap.Bytes > 1 || snap.Shards != 0 {
		t.Fatalf("after enforcement: %v, want empty account", snap)
	}
	if snap.Evictions != 2 || snap.EvictedBytes != s1.bytes+s2.bytes {
		t.Fatalf("eviction counters %v, want 2 evictions covering both shards", snap)
	}
	if op.Cached(k1) || op.Cached(k2) {
		t.Fatal("over-quota cold shards survived enforcement")
	}
}

func TestGlobalEvictionPrefersOverQuotaTenants(t *testing.T) {
	tenantCleanup(t, "glut", "modest")
	opA := lifecycleOperand(107)
	opB := lifecycleOperand(109)
	defer opA.Close()
	defer opB.Close()
	key := ShardKey{Tile: 32, Rep: RepHash}

	// Baseline: run with an unlimited budget so the builds themselves don't
	// evict anything.
	SetShardBudget(-1)

	// modest's shard is OLDER (colder) than glut's: plain LRU would evict
	// modest first. The quota preference must reverse that.
	sb, bb := opB.Shard(key, 2)
	claimShard(sb, "modest", bb)
	sb.Unpin()
	sa, ba := opA.Shard(key, 2)
	claimShard(sa, "glut", ba)
	sa.Unpin()
	SetTenantQuota("glut", 1) // glut is now hopelessly over quota

	// A budget that can hold modest's shard but not both: the victim must
	// be glut's, despite being the more recently used.
	SetShardBudget(sb.bytes + sa.bytes - 1)
	if opA.Cached(key) {
		t.Fatal("over-quota tenant's shard survived the budget squeeze")
	}
	if !opB.Cached(key) {
		t.Fatal("under-quota tenant's warm shard was evicted while an over-quota tenant's remained preferable")
	}
}

func TestDropTenantReleasesClaimsButKeepsSharedShards(t *testing.T) {
	tenantCleanup(t, "shared-a", "shared-b")
	op := lifecycleOperand(113)
	defer op.Close()
	key := ShardKey{Tile: 32, Rep: RepHash}

	s, built := op.Shard(key, 2)
	claimShard(s, "shared-a", built)
	claimShard(s, "shared-b", false)
	s.Unpin()

	// Dropping one claimant leaves the shard resident for the other.
	DropTenant("shared-a")
	if _, ok := TenantStats("shared-a"); ok {
		t.Fatal("account survived DropTenant")
	}
	if !op.Cached(key) {
		t.Fatal("shard shared with a live tenant was retired by DropTenant")
	}
	snapB, _ := TenantStats("shared-b")
	if snapB.Bytes != s.bytes {
		t.Fatalf("surviving claimant's charge %d, want %d", snapB.Bytes, s.bytes)
	}

	// Dropping the last claimant retires the now-unwanted cold shard.
	DropTenant("shared-b")
	if op.Cached(key) {
		t.Fatal("solely-claimed cold shard survived its last DropTenant")
	}
}

func TestEngineTenantTaggingAndRunExitEnforcement(t *testing.T) {
	tenantCleanup(t, "engine-t")
	rng := rand.New(rand.NewSource(127))
	l := randomMatrix(rng, 150, 40, 1200)
	r := randomMatrix(rng, 140, 40, 1200)
	lo, ro := NewOperand(l), NewOperand(r)
	defer lo.Close()
	defer ro.Close()

	SetTenantQuota("engine-t", 1)
	out, _, err := ContractOperands(lo, ro, Config{Threads: 2, Tenant: "engine-t", CacheBudget: -1})
	if err != nil {
		t.Fatalf("ContractOperands: %v", err)
	}
	RecycleOutput(out)

	// The run tagged both builds to the tenant, and its exit enforcement
	// must have settled the 1-byte quota once the run pins dropped.
	snap, ok := TenantStats("engine-t")
	if !ok {
		t.Fatal("tenanted run left no account")
	}
	if snap.Misses < 2 {
		t.Fatalf("misses=%d, want both operand builds charged", snap.Misses)
	}
	if snap.Bytes > 1 {
		t.Fatalf("resident charge %d exceeds the 1-byte quota after run exit", snap.Bytes)
	}
	if snap.Evictions == 0 {
		t.Fatal("quota overrun settled without any tenant eviction")
	}
}
