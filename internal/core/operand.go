package core

import (
	"sync"

	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/scheduler"
)

// Operand wraps a matrixized contraction operand together with a cache of
// built tile shards. Building a shard — partitioning the operand into
// per-tile segments and constructing per-tile hash tables or sorted groups
// over them — is the paper's Build phase (Algorithm 5, Section 4.2); caching
// it by ShardKey lets repeated contractions over the same operand skip that
// phase entirely.
//
// An Operand is safe for concurrent use: multiple contractions may share
// one, and a shard needed by several of them at once is built exactly once
// while the others wait.
type Operand struct {
	// Mat is the matrixized operand; treated as immutable once wrapped.
	Mat *coo.Matrix

	mu     sync.Mutex
	shards map[ShardKey]*Shard
}

// NewOperand wraps a matrixized operand for shard caching. The matrix must
// not be mutated afterwards: cached shards index into it.
func NewOperand(m *coo.Matrix) *Operand {
	return &Operand{Mat: m, shards: make(map[ShardKey]*Shard)}
}

// ShardKey is the shard-compatibility contract: a contraction can reuse a
// cached shard iff it partitions the operand with the same tile side under
// the same input representation. The tile side fixes the grid (tiles =
// ceil(ExtDim/Tile)) and the intra-tile index split, so any contraction
// arriving at the same (Tile, Rep) — whether from the model's decision or
// an explicit override — sees bit-identical tables.
type ShardKey struct {
	Tile uint64
	Rep  InputRep
}

// Shard is one operand's built tile tables for a given ShardKey. Immutable
// after construction, so concurrent contractions read it without locks.
type Shard struct {
	Key ShardKey

	sealed   []*hashtable.Sealed // RepHash tiles (nil entries are empty)
	sorted   []*sortedTile       // RepSorted tiles
	nonEmpty []int               // indices of tiles with at least one nonzero
	pairs    int                 // total nonzeros across all tiles
	keys     int                 // total distinct contraction keys across tiles

	built chan struct{} // closed when the build completes

	ck checkedShard // generation stamp; zero-sized unless built with fastcc_checked
}

// sealedAt returns tile i's sealed table (nil when empty), verifying under
// fastcc_checked that the shard's build completed before any tile is read.
//
//fastcc:hotpath
func (s *Shard) sealedAt(i int) *hashtable.Sealed {
	s.checkBuilt("sealedAt")
	return s.sealed[i]
}

// sortedAt is sealedAt's RepSorted twin.
//
//fastcc:hotpath
func (s *Shard) sortedAt(i int) *sortedTile {
	s.checkBuilt("sortedAt")
	return s.sorted[i]
}

// Tiles returns the tile-grid size (number of tiles along the operand's
// external dimension).
func (s *Shard) Tiles() int {
	if s.Key.Rep == RepSorted {
		return len(s.sorted)
	}
	return len(s.sealed)
}

// NonEmpty returns the indices of nonempty tiles (read-only), cached at
// build time straight from the partition offsets so the contract schedule
// never rescans the tile array.
func (s *Shard) NonEmpty() []int { return s.nonEmpty }

// Pairs returns the shard's total nonzero count.
func (s *Shard) Pairs() int { return s.pairs }

// TileBytes estimates the average in-memory footprint of one non-empty tile,
// the per-panel term of the LLC block-shape choice. The per-key constant
// covers the dense key, its span, and the (load-factor-padded, power-of-two)
// slot arrays of the sealed form; the sorted form is smaller, but the
// estimate only has to be the right order of magnitude for blocking.
func (s *Shard) TileBytes() int64 {
	ne := len(s.nonEmpty)
	if ne == 0 {
		return 1
	}
	const pairBytes, keyBytes = 16, 48
	b := (int64(s.pairs)*pairBytes + int64(s.keys)*keyBytes) / int64(ne)
	if b < 1 {
		return 1
	}
	return b
}

// Shard returns the built shard for key, building it with `threads` workers
// on a miss. The second result reports whether this call performed the
// build; a hit — including waiting out another goroutine's in-flight build —
// returns false, which is what Stats reports as shard reuse.
func (o *Operand) Shard(key ShardKey, threads int) (*Shard, bool) {
	o.mu.Lock()
	s, ok := o.shards[key]
	if ok {
		o.mu.Unlock()
		<-s.built
		return s, false
	}
	s = &Shard{Key: key, built: make(chan struct{})}
	o.shards[key] = s
	o.mu.Unlock()
	s.build(o.Mat, threads)
	close(s.built)
	return s, true
}

// Cached reports whether a completed shard for key is available without
// blocking (an in-flight build counts as not yet cached).
func (o *Operand) Cached(key ShardKey) bool {
	o.mu.Lock()
	s, ok := o.shards[key]
	o.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-s.built:
		return true
	default:
	}
	return false
}

// build runs the Build phase for this shard as a two-stage pipeline: first
// the operand is regrouped tile-major by the two-pass parallel partition
// (each nonzero read exactly twice, independent of the worker count), then
// each worker constructs the tables of the non-empty tiles it owns (idx mod
// workers == w over the non-empty list) reading only its own contiguous
// segments. Against the seed's scan-and-filter scheme — every worker
// scanning the whole operand — total Build reads drop from
// O(workers × nnz) to O(nnz).
//
//fastcc:sealer -- the one function allowed to populate a Shard
func (s *Shard) build(m *coo.Matrix, threads int) {
	part := coo.PartitionByTile(m, s.Key.Tile, threads)
	s.nonEmpty = part.NonEmpty()
	s.pairs = m.NNZ()
	n := part.Tiles
	if s.Key.Rep == RepSorted {
		s.sorted = make([]*sortedTile, n)
		scheduler.Static(threads, func(w, size int) {
			buildSortedTiles(s.sorted, part, w, size)
		})
		for _, i := range s.nonEmpty {
			s.keys += len(s.sorted[i].keys)
		}
	} else {
		s.sealed = make([]*hashtable.Sealed, n)
		scheduler.Static(threads, func(w, size int) {
			buildSealedTiles(s.sealed, part, m.CtrDim, w, size)
		})
		for _, i := range s.nonEmpty {
			s.keys += s.sealed[i].Len()
		}
	}
	part.Release()
	s.stampBuilt()
}
