package core

import (
	"sync/atomic"

	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/lockcheck"
	"fastcc/internal/scheduler"
	"fastcc/internal/spill"
)

// Operand wraps a matrixized contraction operand together with a cache of
// built tile shards. Building a shard — partitioning the operand into
// per-tile segments and constructing per-tile hash tables or sorted groups
// over them — is the paper's Build phase (Algorithm 5, Section 4.2); caching
// it by ShardKey lets repeated contractions over the same operand skip that
// phase entirely.
//
// An Operand is safe for concurrent use: multiple contractions may share
// one, and a shard needed by several of them at once is built exactly once
// while the others wait.
type Operand struct {
	// Mat is the matrixized operand; treated as immutable once wrapped.
	Mat *coo.Matrix

	mu     lockcheck.Mutex[operandRank] //fastcc:lockrank 2 exclusive -- never nested with shardLRU.mu, in either order
	shards map[ShardKey]*Shard

	// spillKey is the content key naming this operand's spill files (empty
	// for anonymous operands, set by NewKeyedOperand); spillID is the lazy
	// process-local name anonymous operands spill under. Guarded by mu.
	spillKey string
	spillID  string
}

// operandRank pins Operand.mu into the dynamic lock-rank hierarchy
// (internal/lockcheck), mirroring the //fastcc:lockrank marker above for
// fastcc_checked builds.
type operandRank struct{}

func (operandRank) LockRank() (int, bool) { return 2, true }
func (operandRank) RankLabel() string     { return "Operand.mu" }

// NewOperand wraps a matrixized operand for shard caching. The matrix must
// not be mutated afterwards: cached shards index into it. Under
// fastcc_checked the matrix content is hash-stamped here and re-verified at
// every shard build, so a caller mutating the tensor through the original
// slices panics at the next build instead of silently poisoning the tables.
func NewOperand(m *coo.Matrix) *Operand {
	m.Stamp()
	return &Operand{Mat: m, shards: make(map[ShardKey]*Shard)}
}

// NewKeyedOperand is NewOperand for content-addressed operands: key (the
// server uses the hex content hash of the canonical tensor encoding) names
// this operand's spill files, so a keep-mode spill directory lets a
// restarted process that derives the same key adopt the previous process's
// on-disk shard images instead of rebuilding them. Two live operands with
// the same key share the namespace safely — the generation stamp turns a
// concurrent overwrite into a typed ErrStale fallback, never a wrong read.
func NewKeyedOperand(m *coo.Matrix, key string) *Operand {
	o := NewOperand(m)
	o.spillKey = sanitizeSpillKey(key)
	return o
}

// ShardKey is the shard-compatibility contract: a contraction can reuse a
// cached shard iff it partitions the operand with the same tile side under
// the same input representation. The tile side fixes the grid (tiles =
// ceil(ExtDim/Tile)) and the intra-tile index split, so any contraction
// arriving at the same (Tile, Rep) — whether from the model's decision or
// an explicit override — sees bit-identical tables.
type ShardKey struct {
	Tile uint64
	Rep  InputRep
}

// Shard is one operand's built tile tables for a given ShardKey. The tables
// are immutable after construction, so concurrent contractions read them
// without locks; what is mutable is the shard's lifetime state — see
// lifecycle.go for the pin/doom/retire protocol and the LRU the shard is
// charged to.
type Shard struct {
	Key ShardKey

	sealed   []*hashtable.Sealed // RepHash tiles (nil entries are empty)
	sorted   []*sortedTile       // RepSorted tiles
	nonEmpty []int               // indices of tiles with at least one nonzero
	pairs    int                 // total nonzeros across all tiles
	keys     int                 // total distinct contraction keys across tiles

	built chan struct{} // closed when the build completes

	// Lifecycle state (lifecycle.go): the owning operand (for unmapping at
	// eviction), the footprint charged to the byte budget, the atomic
	// pin/doom/retire word, and the intrusive LRU links guarded by
	// shardLRU.mu.
	owner            *Operand
	bytes            int64
	state            atomic.Uint64
	lruPrev, lruNext *Shard
	inLRU            bool
	claims           []string // tenant IDs charged for this shard (tenant.go), guarded by shardLRU.mu

	// spill is the disk-tier image of a spilled shard (spill.go), installed
	// by trySpill and taken by whoever reloads or drops the stub; guarded by
	// the owner's mu. spillClaims captures the claim list at retirement so
	// spill round trips credit the tenants that had the shard warm; guarded
	// by shardLRU.mu.
	spill       *spill.Handle
	spillClaims []string

	ck checkedShard // generation stamp; zero-sized unless built with fastcc_checked
}

// sealedAt returns tile i's sealed table (nil when empty), verifying under
// fastcc_checked that the shard's build completed before any tile is read.
//
//fastcc:hotpath
func (s *Shard) sealedAt(i int) *hashtable.Sealed {
	s.checkBuilt("sealedAt")
	return s.sealed[i]
}

// sortedAt is sealedAt's RepSorted twin.
//
//fastcc:hotpath
func (s *Shard) sortedAt(i int) *sortedTile {
	s.checkBuilt("sortedAt")
	return s.sorted[i]
}

// Tiles returns the tile-grid size (number of tiles along the operand's
// external dimension).
func (s *Shard) Tiles() int {
	if s.Key.Rep == RepSorted {
		return len(s.sorted)
	}
	return len(s.sealed)
}

// NonEmpty returns the indices of nonempty tiles (read-only), cached at
// build time straight from the partition offsets so the contract schedule
// never rescans the tile array.
func (s *Shard) NonEmpty() []int { return s.nonEmpty }

// Pairs returns the shard's total nonzero count.
func (s *Shard) Pairs() int { return s.pairs }

// TileBytes estimates the average in-memory footprint of one non-empty tile,
// the per-panel term of the LLC block-shape choice. The per-key constant
// covers the dense key, its span, and the (load-factor-padded, power-of-two)
// slot arrays of the sealed form; the sorted form is smaller, but the
// estimate only has to be the right order of magnitude for blocking.
func (s *Shard) TileBytes() int64 {
	ne := len(s.nonEmpty)
	if ne == 0 {
		return 1
	}
	const pairBytes, keyBytes = 16, 48
	b := (int64(s.pairs)*pairBytes + int64(s.keys)*keyBytes) / int64(ne)
	if b < 1 {
		return 1
	}
	return b
}

// Shard returns the built shard for key PINNED — the caller owes exactly one
// Unpin, and until it pays, the byte-budgeted eviction policy cannot reclaim
// the shard's tables. A miss builds with `threads` workers; the second result
// reports whether this call performed the build (a hit — including waiting
// out another goroutine's in-flight build — returns false, which is what
// Stats reports as shard reuse).
//
// A mapped shard that eviction has retired but not yet unmapped is detected
// by the pin failing. If the retirement spilled the tables to the disk tier,
// the successor shard reloads them from the spill file; otherwise (and on
// any typed read-back failure) it rebuilds from the operand. Content-keyed
// operands additionally probe the spill directory's orphans on a cold miss,
// adopting a previous process's image when one matches.
func (o *Operand) Shard(key ShardKey, threads int) (*Shard, bool) {
	o.mu.Lock()
	var (
		h         *spill.Handle
		adopted   bool
		oldClaims []string
	)
	if s, ok := o.shards[key]; ok {
		if s.tryPin() {
			o.mu.Unlock()
			<-s.built
			shardLRU.counters.Hits.Add(1)
			shardLRU.touch(s)
			return s, false
		}
		// Retired under us. A spilled stub hands its disk image (and the
		// tenants it was warm for) to the successor built below; anything
		// else is a plain stale entry headed for rebuild.
		h = s.takeSpillLocked()
		oldClaims = s.spillClaims
		delete(o.shards, key)
	} else {
		h = o.adoptSpillLocked(key)
		adopted = h != nil
	}
	ns := &Shard{Key: key, owner: o, built: make(chan struct{})}
	ns.state.Store(shardPinInc) // born pinned: the builder's reference is the caller's
	o.shards[key] = ns
	o.mu.Unlock()
	// Concurrent fetchers of the same key now wait on ns.built, so the
	// reload (or rebuild) below runs exactly once — same singleflight as a
	// plain build.
	if h != nil && ns.loadSpill(h, o.Mat) {
		close(ns.built)
		shardLRU.counters.Hits.Add(1)
		if adopted {
			shardLRU.counters.SpillAdopts.Add(1)
		}
		creditTenantSpill(oldClaims, 0, false)
		shardLRU.insert(ns)
		return ns, false
	}
	shardLRU.counters.Misses.Add(1)
	ns.build(o.Mat, threads)
	close(ns.built)
	shardLRU.insert(ns)
	return ns, true
}

// Cached reports whether a completed, still-live shard for key is available
// without blocking (an in-flight build and a retired-but-unmapped entry both
// count as not cached).
func (o *Operand) Cached(key ShardKey) bool {
	o.mu.Lock()
	s, ok := o.shards[key]
	o.mu.Unlock()
	if !ok || s.state.Load()&shardRetired != 0 {
		return false
	}
	select {
	case <-s.built:
		return true
	default:
	}
	return false
}

// build runs the Build phase for this shard as a two-stage pipeline: first
// the operand is regrouped tile-major by the two-pass parallel partition
// (each nonzero read exactly twice, independent of the worker count), then
// each worker constructs the tables of the non-empty tiles it owns (idx mod
// workers == w over the non-empty list) reading only its own contiguous
// segments. Against the seed's scan-and-filter scheme — every worker
// scanning the whole operand — total Build reads drop from
// O(workers × nnz) to O(nnz).
//
//fastcc:sealer -- the one function allowed to populate a Shard
func (s *Shard) build(m *coo.Matrix, threads int) {
	m.VerifyStamp("core.Shard.build")
	part := coo.PartitionByTile(m, s.Key.Tile, threads)
	s.nonEmpty = part.NonEmpty()
	s.pairs = m.NNZ()
	n := part.Tiles
	if s.Key.Rep == RepSorted {
		s.sorted = make([]*sortedTile, n)
		scheduler.Static(threads, func(w, size int) {
			buildSortedTiles(s.sorted, part, w, size)
		})
		for _, i := range s.nonEmpty {
			s.keys += len(s.sorted[i].keys)
		}
	} else {
		s.sealed = make([]*hashtable.Sealed, n)
		scheduler.Static(threads, func(w, size int) {
			buildSealedTiles(s.sealed, part, m.CtrDim, w, size)
		})
		for _, i := range s.nonEmpty {
			s.keys += s.sealed[i].Len()
		}
	}
	part.Release()
	s.bytes = s.footprint() // one stable number for LRU charge and discharge
	s.stampBuilt()
}

// footprint computes the byte figure the eviction budget charges for this
// shard: the tile tables themselves plus the per-tile pointer and index
// arrays. Computed once at build completion and cached in s.bytes (the LRU
// accounting must see one stable number for charge and discharge).
func (s *Shard) footprint() int64 {
	b := int64(len(s.nonEmpty)) * 8
	if s.Key.Rep == RepSorted {
		b += int64(len(s.sorted)) * 8
		for _, st := range s.sorted {
			if st != nil {
				b += st.memBytes()
			}
		}
		return b
	}
	b += int64(len(s.sealed)) * 8
	for _, t := range s.sealed {
		if t != nil {
			b += t.MemBytes()
		}
	}
	return b
}

// recycle reclaims a retired shard's storage: every sealed table's arenas
// flow back through the hashtable pools (hashtable.Sealed.Recycle), every
// sorted tile's arrays through the sorted pools. Only the single winner of
// tryRetire may call this, after the shard is uncharged and unmapped. Under
// fastcc_checked the shard's generation stamp flips to retired first, so a
// reader that skipped pinning panics at its next tile access.
//
//fastcc:sealer -- lifecycle transition, the inverse of build
func (s *Shard) recycle() {
	s.stampRetired()
	for i, t := range s.sealed {
		if t != nil {
			t.Recycle()
			s.sealed[i] = nil
		}
	}
	for i, st := range s.sorted {
		if st != nil {
			st.recycle()
			s.sorted[i] = nil
		}
	}
	s.sealed, s.sorted = nil, nil
}
