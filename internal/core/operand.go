package core

import (
	"sync"

	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/scheduler"
)

// Operand wraps a matrixized contraction operand together with a cache of
// built tile shards. Building a shard — scanning the operand and bucketing
// its nonzeros into per-tile hash tables or sorted groups — is the paper's
// Build phase (Algorithm 5, Section 4.2); caching it by ShardKey lets
// repeated contractions over the same operand skip that phase entirely.
//
// An Operand is safe for concurrent use: multiple contractions may share
// one, and a shard needed by several of them at once is built exactly once
// while the others wait.
type Operand struct {
	// Mat is the matrixized operand; treated as immutable once wrapped.
	Mat *coo.Matrix

	mu     sync.Mutex
	shards map[ShardKey]*Shard
}

// NewOperand wraps a matrixized operand for shard caching. The matrix must
// not be mutated afterwards: cached shards index into it.
func NewOperand(m *coo.Matrix) *Operand {
	return &Operand{Mat: m, shards: make(map[ShardKey]*Shard)}
}

// ShardKey is the shard-compatibility contract: a contraction can reuse a
// cached shard iff it partitions the operand with the same tile side under
// the same input representation. The tile side fixes the grid (tiles =
// ceil(ExtDim/Tile)) and the intra-tile index split, so any contraction
// arriving at the same (Tile, Rep) — whether from the model's decision or
// an explicit override — sees bit-identical tables.
type ShardKey struct {
	Tile uint64
	Rep  InputRep
}

// Shard is one operand's built tile tables for a given ShardKey. Immutable
// after construction, so concurrent contractions read it without locks.
type Shard struct {
	Key ShardKey

	hash     []*hashtable.SliceTable // RepHash tiles (nil entries are empty)
	sorted   []*sortedTile           // RepSorted tiles
	nonEmpty []int                   // indices of tiles with at least one nonzero

	built chan struct{} // closed when the build completes
}

// Tiles returns the tile-grid size (number of tiles along the operand's
// external dimension).
func (s *Shard) Tiles() int {
	if s.Key.Rep == RepSorted {
		return len(s.sorted)
	}
	return len(s.hash)
}

// NonEmpty returns the indices of nonempty tiles (read-only).
func (s *Shard) NonEmpty() []int { return s.nonEmpty }

// Shard returns the built shard for key, building it with `threads` workers
// on a miss. The second result reports whether this call performed the
// build; a hit — including waiting out another goroutine's in-flight build —
// returns false, which is what Stats reports as shard reuse.
func (o *Operand) Shard(key ShardKey, threads int) (*Shard, bool) {
	o.mu.Lock()
	s, ok := o.shards[key]
	if ok {
		o.mu.Unlock()
		<-s.built
		return s, false
	}
	s = &Shard{Key: key, built: make(chan struct{})}
	o.shards[key] = s
	o.mu.Unlock()
	s.build(o.Mat, threads)
	close(s.built)
	return s, true
}

// Cached reports whether a completed shard for key is available without
// blocking (an in-flight build counts as not yet cached).
func (o *Operand) Cached(key ShardKey) bool {
	o.mu.Lock()
	s, ok := o.shards[key]
	o.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-s.built:
		return true
	default:
		return false
	}
}

// build runs the Build phase for this shard: each worker owns the tiles i
// with i % workers == w (the paper's thread-local construction scheme).
func (s *Shard) build(m *coo.Matrix, threads int) {
	n := int((m.ExtDim + s.Key.Tile - 1) / s.Key.Tile)
	if s.Key.Rep == RepSorted {
		s.sorted = make([]*sortedTile, n)
		scheduler.Static(threads, func(w, size int) {
			buildSortedTileTables(s.sorted, m, s.Key.Tile, w, size)
		})
		s.nonEmpty = nonEmptySorted(s.sorted)
	} else {
		s.hash = make([]*hashtable.SliceTable, n)
		scheduler.Static(threads, func(w, size int) {
			buildTileTables(s.hash, m, s.Key.Tile, w, size)
		})
		s.nonEmpty = nonEmptyTiles(s.hash)
	}
}
