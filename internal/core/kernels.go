package core

import (
	"fmt"

	"fastcc/internal/accum"
	"fastcc/internal/hashtable"
	"fastcc/internal/mempool"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
)

// This file is the tile microkernel family: one specialized inner loop per
// (representation, accumulator) combination, replacing the single generic
// co-iteration loop that branched on the accumulator type inside every tile.
// The generic loop survives as the KernelGeneric table entry — it is the
// baseline the -exp hotpath experiment measures the specializations against,
// and the fallback for accumulators outside the dense/sparse pair.
//
// Dispatch happens ONCE per run: plan() resolves Decision.Kernel, execute()
// indexes kernelTable with it, and every tile task of the run goes through
// the same direct function value. Inside a specialized kernel there are no
// interface calls — the accumulator is the worker's typed field, and the
// multiply-accumulate runs in the accumulator's ScatterOuter with the flat
// scatter exposed to the compiler.
//
// The hash kernels additionally replace the per-key serial Lookup with
// Sealed.LookupBatch: the iterated side's flat key array is consumed in
// chunks of the platform's probe depth, so up to ProbeBatch home-slot loads
// overlap in the load queue instead of serializing hash → load → compare
// chains (paper Section 4.3's probe-bound regime).
//
// Every kernel preserves the generic loop's accumulation order exactly —
// same iterate-side selection and tie-breaking, same dense-index iteration
// order, same lps-major scatter — so specialized and generic runs agree bit
// for bit, which the equivalence suite and the hotpath harness both assert.

// tileKernel runs one tile-pair contraction. i/j are tile indices into the
// shards; baseL/baseR the tiles' global coordinate bases; probeBatch the
// platform probe depth (hash kernels only).
type tileKernel func(ls, rs *Shard, i, j int, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters, probeBatch int)

// kernelTable maps a resolved model.KernelID to its tile-pair kernel. The
// KernelAuto slot is nil on purpose: plan() must resolve Auto before
// execute() indexes the table (selectKernel guards against it anyway).
var kernelTable = [model.NumKernels]tileKernel{
	model.KernelGeneric:      runGeneric,
	model.KernelHashDense:    runHashDense,
	model.KernelHashSparse:   runHashSparse,
	model.KernelSortedDense:  runSortedDense,
	model.KernelSortedSparse: runSortedSparse,
}

// selectKernel resolves the table entry for a decision, falling back to the
// generic loop for unresolved or out-of-range ids.
func selectKernel(id model.KernelID) tileKernel {
	if int(id) < len(kernelTable) && id > model.KernelAuto {
		if k := kernelTable[id]; k != nil {
			return k
		}
	}
	return runGeneric
}

// resolveKernel fills dec.Kernel from the config: an explicit cfg.Kernel is
// validated against the run's representation and accumulator kind (a kernel
// compiled for the wrong tile form would read the wrong shard arrays);
// KernelAuto derives the specialization from (rep, kind).
func resolveKernel(dec *model.Decision, cfg Config) error {
	if cfg.Kernel == model.KernelAuto {
		dec.Kernel = model.SelectKernel(cfg.Rep == RepSorted, dec.Kind)
		return nil
	}
	want := model.SelectKernel(cfg.Rep == RepSorted, dec.Kind)
	if cfg.Kernel != model.KernelGeneric && cfg.Kernel != want {
		return fmt.Errorf("core: kernel %v incompatible with rep=%v accum=%v (want %v or generic)",
			cfg.Kernel, cfg.Rep, dec.Kind, want)
	}
	dec.Kernel = cfg.Kernel
	return nil
}

func runGeneric(ls, rs *Shard, i, j int, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters, _ int) {
	if ls.Key.Rep == RepSorted {
		contractTilePairSorted(ls.sortedAt(i), rs.sortedAt(j), baseL, baseR, wk, pool, ctr)
	} else {
		contractTilePair(ls.sealedAt(i), rs.sealedAt(j), baseL, baseR, wk, pool, ctr)
	}
}

// chooseSides orders a hash tile pair for co-iteration: iterate the table
// with fewer DISTINCT KEYS and probe the other. The intersection is the
// same either way; the query count is the iterated side's key count, so the
// cheaper side to iterate is the one with fewer keys — Sealed.Len(), not
// pair count. Ties iterate the left table, matching the generic loop so
// specialized kernels accumulate in the identical order.
//
//fastcc:hotpath
func chooseSides(hl, hr *hashtable.Sealed) (iter, probeInto *hashtable.Sealed, swapped bool) {
	if hr.Len() < hl.Len() {
		return hr, hl, true
	}
	return hl, hr, false
}

func runHashDense(ls, rs *Shard, i, j int, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters, probeBatch int) {
	contractHashDense(ls.sealedAt(i), rs.sealedAt(j), baseL, baseR, wk, pool, ctr, probeBatch)
}

func runHashSparse(ls, rs *Shard, i, j int, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters, probeBatch int) {
	contractHashSparse(ls.sealedAt(i), rs.sealedAt(j), baseL, baseR, wk, pool, ctr, probeBatch)
}

func runSortedDense(ls, rs *Shard, i, j int, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters, _ int) {
	contractSortedDense(ls.sortedAt(i), rs.sortedAt(j), baseL, baseR, wk, pool, ctr)
}

func runSortedSparse(ls, rs *Shard, i, j int, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters, _ int) {
	contractSortedSparse(ls.sortedAt(i), rs.sortedAt(j), baseL, baseR, wk, pool, ctr)
}

// contractHashDense is the RepHash × AccumDense microkernel: batched probes
// over the iterated side's flat key array, dense-grid scatter per match.
//
//fastcc:hotpath
func contractHashDense(hl, hr *hashtable.Sealed, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters, probeBatch int) {

	iter, probeInto, swapped := chooseSides(hl, hr)
	keys := iter.Keys()
	d := wk.dense
	var out [hashtable.LookupBatchMax]int32
	var ms [hashtable.LookupBatchMax]accum.Match
	var volume, updates, batches, hits int64
	for base := 0; base < len(keys); base += probeBatch {
		n := len(keys) - base
		if n > probeBatch {
			n = probeBatch
		}
		h := probeInto.LookupBatch(keys[base:base+n], out[:n])
		batches++
		if h == 0 {
			continue
		}
		hits += int64(h)
		// Gather the chunk's matched run pairs, then scatter them in ONE
		// accumulator call — the call boundary and the tile field loads
		// amortize over the chunk instead of recurring per matched key.
		nm := 0
		for bi := 0; bi < n; bi++ {
			li := out[bi]
			if li < 0 {
				continue
			}
			ips := iter.PairsAt(base + bi)
			pps := probeInto.PairsAt(int(li))
			volume += int64(len(ips)) + int64(len(pps))
			updates += int64(len(ips)) * int64(len(pps))
			if swapped {
				ms[nm] = accum.Match{L: pps, R: ips}
			} else {
				ms[nm] = accum.Match{L: ips, R: pps}
			}
			nm++
		}
		d.ScatterMatches(ms[:nm])
	}
	queries := int64(len(keys))
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
	ctr.AddProbeBatches(batches, hits, queries-hits)
	d.Drain(func(l, r uint32, v float64) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		pool.Append(Triple{L: baseL + uint64(l), R: baseR + uint64(r), V: v})
	})
}

// contractHashSparse is the RepHash × AccumSparse microkernel: batched
// probes feeding the amortized key-merge of the sparse accumulator's
// open-addressing table.
//
//fastcc:hotpath
func contractHashSparse(hl, hr *hashtable.Sealed, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters, probeBatch int) {

	iter, probeInto, swapped := chooseSides(hl, hr)
	keys := iter.Keys()
	s := wk.sparse
	var out [hashtable.LookupBatchMax]int32
	var ms [hashtable.LookupBatchMax]accum.Match
	var volume, updates, batches, hits int64
	for base := 0; base < len(keys); base += probeBatch {
		n := len(keys) - base
		if n > probeBatch {
			n = probeBatch
		}
		h := probeInto.LookupBatch(keys[base:base+n], out[:n])
		batches++
		if h == 0 {
			continue
		}
		hits += int64(h)
		nm := 0
		for bi := 0; bi < n; bi++ {
			li := out[bi]
			if li < 0 {
				continue
			}
			ips := iter.PairsAt(base + bi)
			pps := probeInto.PairsAt(int(li))
			volume += int64(len(ips)) + int64(len(pps))
			updates += int64(len(ips)) * int64(len(pps))
			if swapped {
				ms[nm] = accum.Match{L: pps, R: ips}
			} else {
				ms[nm] = accum.Match{L: ips, R: pps}
			}
			nm++
		}
		s.ScatterMatches(ms[:nm])
	}
	queries := int64(len(keys))
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
	ctr.AddProbeBatches(batches, hits, queries-hits)
	s.Drain(func(l, r uint32, v float64) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		pool.Append(Triple{L: baseL + uint64(l), R: baseR + uint64(r), V: v})
	})
}

// contractSortedDense is the RepSorted × AccumDense microkernel: the sorted
// merge walk with the dense scatter inlined per matched key. No probes, so
// no batch counters; queries count merge-loop iterations like the generic
// sorted loop does.
//
//fastcc:hotpath
func contractSortedDense(sl, sr *sortedTile, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters) {

	d := wk.dense
	var ms [hashtable.LookupBatchMax]accum.Match
	nm := 0
	var queries, volume, updates int64
	i, j := 0, 0
	for i < len(sl.keys) && j < len(sr.keys) {
		queries++
		switch {
		case sl.keys[i] < sr.keys[j]:
			i++
		case sl.keys[i] > sr.keys[j]:
			j++
		default:
			lps := sl.pairs[sl.offs[i]:sl.offs[i+1]]
			rps := sr.pairs[sr.offs[j]:sr.offs[j+1]]
			volume += int64(len(lps)) + int64(len(rps))
			updates += int64(len(lps)) * int64(len(rps))
			ms[nm] = accum.Match{L: lps, R: rps}
			if nm++; nm == len(ms) {
				d.ScatterMatches(ms[:nm])
				nm = 0
			}
			i++
			j++
		}
	}
	d.ScatterMatches(ms[:nm])
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
	d.Drain(func(l, r uint32, v float64) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		pool.Append(Triple{L: baseL + uint64(l), R: baseR + uint64(r), V: v})
	})
}

// contractSortedSparse is the RepSorted × AccumSparse microkernel.
//
//fastcc:hotpath
func contractSortedSparse(sl, sr *sortedTile, baseL, baseR uint64,
	wk *worker, pool *mempool.Pool[Triple], ctr *metrics.Counters) {

	s := wk.sparse
	var ms [hashtable.LookupBatchMax]accum.Match
	nm := 0
	var queries, volume, updates int64
	i, j := 0, 0
	for i < len(sl.keys) && j < len(sr.keys) {
		queries++
		switch {
		case sl.keys[i] < sr.keys[j]:
			i++
		case sl.keys[i] > sr.keys[j]:
			j++
		default:
			lps := sl.pairs[sl.offs[i]:sl.offs[i+1]]
			rps := sr.pairs[sr.offs[j]:sr.offs[j+1]]
			volume += int64(len(lps)) + int64(len(rps))
			updates += int64(len(lps)) * int64(len(rps))
			ms[nm] = accum.Match{L: lps, R: rps}
			if nm++; nm == len(ms) {
				s.ScatterMatches(ms[:nm])
				nm = 0
			}
			i++
			j++
		}
	}
	s.ScatterMatches(ms[:nm])
	ctr.AddQueries(queries)
	ctr.AddVolume(volume)
	ctr.AddUpdates(updates)
	s.Drain(func(l, r uint32, v float64) { //fastcc:allow hotalloc -- one closure per tile task, outside the per-update loops
		pool.Append(Triple{L: baseL + uint64(l), R: baseR + uint64(r), V: v})
	})
}
