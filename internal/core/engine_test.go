package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastcc/internal/coo"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
	"fastcc/internal/ref"
	"fastcc/internal/testutil"
)

// randomMatrix builds a matrixized operand with nnz random entries (values
// are small integers so accumulation is exact in float64).
func randomMatrix(rng *rand.Rand, extDim, ctrDim uint64, nnz int) *coo.Matrix {
	m := &coo.Matrix{ExtDim: extDim, CtrDim: ctrDim}
	for i := 0; i < nnz; i++ {
		m.Ext = append(m.Ext, rng.Uint64()%extDim)
		m.Ctr = append(m.Ctr, rng.Uint64()%ctrDim)
		m.Val = append(m.Val, float64(rng.Intn(9)-4))
	}
	return m
}

// runAndCompare contracts with cfg and checks the result against the map
// reference. Returns the stats for further assertions.
func runAndCompare(t *testing.T, l, r *coo.Matrix, cfg Config) *Stats {
	t.Helper()
	out, st, err := Contract(l, r, cfg)
	if err != nil {
		t.Fatalf("Contract: %v", err)
	}
	var ls, rs []uint64
	var vs []float64
	out.ForEach(func(tr Triple) {
		ls = append(ls, tr.L)
		rs = append(rs, tr.R)
		vs = append(vs, tr.V)
	})
	got := ref.TriplesToMatrixTensor(ls, rs, vs, l.ExtDim, r.ExtDim)
	want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), l.ExtDim, r.ExtDim)
	if !coo.Equal(got, want) {
		t.Fatalf("result mismatch: got %d nnz want %d nnz (cfg=%+v)", got.NNZ(), want.NNZ(), cfg)
	}
	return st
}

func TestContractTinyKnown(t *testing.T) {
	// L = [[1,2],[0,3]] (l x c), R = [[4,0],[5,6]] (c x r)
	// O = L·R = [[14,12],[15,18]]
	l := &coo.Matrix{
		Ext: []uint64{0, 0, 1}, Ctr: []uint64{0, 1, 1},
		Val: []float64{1, 2, 3}, ExtDim: 2, CtrDim: 2,
	}
	r := &coo.Matrix{
		Ext: []uint64{0, 0, 1}, Ctr: []uint64{0, 1, 1},
		Val: []float64{4, 5, 6}, ExtDim: 2, CtrDim: 2,
	}
	out, st, err := Contract(l, r, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.OutputNNZ != 4 {
		t.Fatalf("output nnz=%d", st.OutputNNZ)
	}
	want := map[[2]uint64]float64{{0, 0}: 14, {0, 1}: 12, {1, 0}: 15, {1, 1}: 18}
	out.ForEach(func(tr Triple) {
		if want[[2]uint64{tr.L, tr.R}] != tr.V {
			t.Fatalf("(%d,%d)=%g", tr.L, tr.R, tr.V)
		}
		delete(want, [2]uint64{tr.L, tr.R})
	})
	if len(want) != 0 {
		t.Fatalf("missing outputs: %v", want)
	}
}

func TestContractMatchesReferenceAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := randomMatrix(rng, 300, 50, 2000)
	r := randomMatrix(rng, 200, 50, 1500)
	cfgs := []Config{
		{Threads: 1},
		{Threads: 4},
		{Threads: 4, TileL: 32, TileR: 32},
		{Threads: 4, TileL: 8, TileR: 64},
		{Threads: 2, Accum: model.AccumDense, TileL: 64, TileR: 64},
		{Threads: 2, Accum: model.AccumSparse, TileL: 64, TileR: 64},
		{Threads: 3, Accum: model.AccumSparse, TileL: 512, TileR: 512},
		{Threads: 8, TileL: 1, TileR: 1}, // degenerate 1x1 tiles
	}
	for _, cfg := range cfgs {
		runAndCompare(t, l, r, cfg)
	}
}

func TestContractDeterministicAcrossThreads(t *testing.T) {
	// Same tile size → identical bit-exact output regardless of threads.
	rng := rand.New(rand.NewSource(7))
	l := randomMatrix(rng, 500, 80, 4000)
	r := randomMatrix(rng, 400, 80, 3000)
	collect := func(threads int) *coo.Tensor {
		out, _, err := Contract(l, r, Config{Threads: threads, TileL: 64, TileR: 64})
		if err != nil {
			t.Fatal(err)
		}
		var ls, rs []uint64
		var vs []float64
		out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
		tn := ref.TriplesToMatrixTensor(ls, rs, vs, l.ExtDim, r.ExtDim)
		tn.Sort()
		return tn
	}
	a, b := collect(1), collect(7)
	if !coo.Equal(a, b) {
		t.Fatal("thread count changed results")
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			t.Fatal("bit-exact determinism violated")
		}
	}
}

func TestContractEmptyOperands(t *testing.T) {
	l := &coo.Matrix{ExtDim: 10, CtrDim: 10}
	r := &coo.Matrix{ExtDim: 10, CtrDim: 10}
	out, st, err := Contract(l, r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 || st.OutputNNZ != 0 || st.Tasks != 0 {
		t.Fatalf("empty contraction produced %d nnz, %d tasks", out.Len(), st.Tasks)
	}
}

func TestContractDisjointContractionIndices(t *testing.T) {
	// L only has c=0, R only has c=1: product is empty.
	l := &coo.Matrix{Ext: []uint64{3}, Ctr: []uint64{0}, Val: []float64{5}, ExtDim: 8, CtrDim: 2}
	r := &coo.Matrix{Ext: []uint64{4}, Ctr: []uint64{1}, Val: []float64{7}, ExtDim: 8, CtrDim: 2}
	out, _, err := Contract(l, r, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("got %d nnz", out.Len())
	}
}

func TestContractErrors(t *testing.T) {
	ok := &coo.Matrix{ExtDim: 4, CtrDim: 4}
	cases := []struct {
		name string
		l, r *coo.Matrix
		cfg  Config
	}{
		{"zero extent", &coo.Matrix{ExtDim: 0, CtrDim: 4}, ok, Config{}},
		{"ctr mismatch", ok, &coo.Matrix{ExtDim: 4, CtrDim: 5}, Config{}},
		{"dense non-pow2 TR", ok, ok, Config{Accum: model.AccumDense, TileL: 4, TileR: 12}},
		{"dense tile too big", ok, ok, Config{Accum: model.AccumDense, TileL: 1 << 20, TileR: 1 << 20}},
		{"bad platform", ok, ok, Config{Platform: model.Platform{Name: "x", Cores: -1, L3Bytes: 1, WordBytes: 8}}},
	}
	for _, c := range cases {
		if _, _, err := Contract(c.l, c.r, c.cfg); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestContractCountersPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := randomMatrix(rng, 100, 30, 500)
	r := randomMatrix(rng, 100, 30, 500)
	var c metrics.Counters
	_, st, err := Contract(l, r, Config{Threads: 2, TileL: 32, TileR: 32, Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	// Updates must equal the exact multiply-accumulate count.
	want := int64(0)
	byC := map[uint64][2]int64{}
	for _, cc := range l.Ctr {
		e := byC[cc]
		e[0]++
		byC[cc] = e
	}
	for _, cc := range r.Ctr {
		e := byC[cc]
		e[1]++
		byC[cc] = e
	}
	for _, e := range byC {
		want += e[0] * e[1]
	}
	if s.Updates != want {
		t.Fatalf("updates=%d want %d", s.Updates, want)
	}
	if s.Output != int64(st.OutputNNZ) {
		t.Fatalf("output counter=%d stats=%d", s.Output, st.OutputNNZ)
	}
	if s.Queries <= 0 || s.Volume <= 0 {
		t.Fatalf("counters not collected: %+v", s)
	}
	// Tiled-CO queries are bounded by C per tile pair (Section 5.3).
	if s.Queries > int64(st.Tasks)*int64(l.CtrDim) {
		t.Fatalf("queries=%d exceed tasks*C=%d", s.Queries, int64(st.Tasks)*int64(l.CtrDim))
	}
}

func TestContractStatsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := randomMatrix(rng, 1000, 40, 3000)
	r := randomMatrix(rng, 900, 40, 3000)
	st := runAndCompare(t, l, r, Config{Threads: 4, TileL: 128, TileR: 256})
	if st.NL != 8 || st.NR != 4 {
		t.Fatalf("NL=%d NR=%d want 8, 4", st.NL, st.NR)
	}
	if st.TileL != 128 || st.TileR != 256 {
		t.Fatalf("tiles %dx%d", st.TileL, st.TileR)
	}
	if st.Tasks <= 0 || st.Tasks > st.NL*st.NR {
		t.Fatalf("tasks=%d", st.Tasks)
	}
}

func TestContractTilingInvarianceProperty(t *testing.T) {
	// Any tile size must give the same (integer-exact) result.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		extL := uint64(rng.Intn(60) + 1)
		extR := uint64(rng.Intn(60) + 1)
		ctr := uint64(rng.Intn(20) + 1)
		l := randomMatrix(rng, extL, ctr, rng.Intn(150))
		r := randomMatrix(rng, extR, ctr, rng.Intn(150))
		want := ref.MapToMatrixTensor(ref.ContractMatrix(l, r), extL, extR)
		for _, tile := range []uint64{1, 4, 16, 512} {
			out, _, err := Contract(l, r, Config{Threads: 3, TileL: tile, TileR: tile})
			if err != nil {
				return false
			}
			var ls, rs []uint64
			var vs []float64
			out.ForEach(func(tr Triple) { ls = append(ls, tr.L); rs = append(rs, tr.R); vs = append(vs, tr.V) })
			got := ref.TriplesToMatrixTensor(ls, rs, vs, extL, extR)
			if !coo.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestModelDrivenRunPicksConfiguredPlatform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := randomMatrix(rng, 2000, 64, 8000)
	r := randomMatrix(rng, 2000, 64, 8000)
	st := runAndCompare(t, l, r, Config{Threads: 2, Platform: model.Desktop8})
	if st.Decision.DenseT != 512 {
		t.Fatalf("desktop dense tile = %d", st.Decision.DenseT)
	}
	if st.Decision.Kind != model.AccumDense {
		t.Fatalf("dense-ish workload should pick dense, got %v (ENNZ=%g)", st.Decision.Kind, st.Decision.ENNZ)
	}
}

// TestContractOutputChunksReturnToBaseline wires the leak-accounting helper
// into the engine suite: every output chunk Contract vends must come back
// through RecycleOutput, across both cold and warm runs. A drifting gauge
// here means a contraction path dropped a List on the floor.
func TestContractOutputChunksReturnToBaseline(t *testing.T) {
	base := testutil.Capture(testutil.Gauge{Name: "output chunks", Read: OutputChunksOutstanding})
	rng := rand.New(rand.NewSource(77))
	l := randomMatrix(rng, 120, 40, 900)
	r := randomMatrix(rng, 150, 40, 900)
	for i := 0; i < 3; i++ {
		out, _, err := Contract(l, r, Config{Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		RecycleOutput(out)
	}
	base.Assert(t)
}
