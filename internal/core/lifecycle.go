// Shard-cache lifecycle: byte-budgeted LRU eviction over every Operand's
// shard map, with per-shard pinning so in-flight contractions block
// reclamation.
//
// The ownership protocol, in one place:
//
//   - A Shard's lifetime state is a single atomic word: bit 0 retired,
//     bit 1 doomed, bits 2+ the pin refcount. Pinning fails only on a
//     retired shard; retiring succeeds only at refcount zero. Every
//     transition is a CAS, so pin vs evict races resolve atomically with
//     no shard-level lock.
//   - Operand.Shard returns the shard pinned (+1); the engine holds that
//     pin across the run and additionally pins per worker through the
//     scheduler Guard, releasing at each worker's exit. Eviction can
//     therefore never reclaim tables a contractTilePair reader is inside.
//   - Every built shard is charged to one process-wide LRU (shardLRU).
//     When the resident footprint exceeds the budget, the coldest
//     unpinned shards are retired, unmapped from their owning Operand,
//     and their sealed arenas recycled through mempool — unless a spill
//     directory is configured, in which case the tables are serialized to
//     the disk tier first (spill.go) and the next pin reloads them instead
//     of rebuilding: RAM → disk → rebuild instead of RAM → rebuild.
//   - Operand.Close / the prepared API's Drop mark every cached shard
//     doomed: unpinned shards are reclaimed immediately, pinned ones at
//     their last Unpin. The Operand itself stays usable — the next Shard
//     call simply rebuilds.
//
// Lock ordering: shardLRU.mu and Operand.mu are never held together.
// Retirement happens under shardLRU.mu (or lock-free via doom/Unpin);
// unmapping and recycling always run after shardLRU.mu is released.
package core

import (
	"sync/atomic"

	"fastcc/internal/lockcheck"
	"fastcc/internal/metrics"
	"fastcc/internal/model"
	"fastcc/internal/spill"
)

// Shard lifetime state word layout (Shard.state). A spilled shard carries
// retired|spilled: the retired bit is what keeps tryPin failing (its RAM
// tables are gone), the spilled bit records that a disk image exists —
// Operand.Shard turns that stub into a reload instead of a rebuild.
const (
	shardRetired = uint64(1) << 0 // storage reclaimed or queued for it; pins must fail
	shardDoomed  = uint64(1) << 1 // Close/Drop called; retire at refcount zero
	shardSpilled = uint64(1) << 2 // RAM tables reclaimed, image lives on the disk tier
	shardPinInc  = uint64(1) << 3 // one pin reference
)

// DefaultBudgetLLCMultiple sizes the default shard-cache budget as a
// multiple of the platform's last-level cache: big enough that steady-state
// reuse workloads never thrash (shards are LLC-sized by construction), small
// enough to bound a long-lived process that touches many operands.
const DefaultBudgetLLCMultiple = 64

// tryPin takes one pin reference, failing only when the shard is already
// retired (its tables are gone or going). Safe from any goroutine.
//
//fastcc:hotpath
func (s *Shard) tryPin() bool {
	for {
		st := s.state.Load()
		if st&shardRetired != 0 {
			return false
		}
		if s.state.CompareAndSwap(st, st+shardPinInc) {
			return true
		}
	}
}

// mustPin is tryPin for callers that already hold another pin on s (the
// scheduler guard, pinning per-worker under the engine's run-level pin):
// retirement is impossible while any pin is held, so failure is a lifecycle
// protocol violation, not a recoverable miss.
func (s *Shard) mustPin() {
	if !s.tryPin() {
		panic("core: mustPin on a retired shard: a pin was released while the engine still held the shard")
	}
}

// Unpin releases one pin reference. When the last pin leaves a doomed shard,
// the releaser reclaims it — Close/Drop returned long ago; this is the
// deferred half of that drop.
func (s *Shard) Unpin() {
	st := s.state.Add(^(shardPinInc) + 1) // state -= shardPinInc
	if st>>3 > uint64(1)<<40 {
		panic("core: Shard.Unpin without a matching pin")
	}
	if st&shardDoomed != 0 && st&shardRetired == 0 && st>>3 == 0 {
		if s.tryRetire() {
			shardLRU.finishRetire(s, &shardLRU.counters.Drops)
		}
	}
}

// tryRetire moves the shard to the retired state, succeeding only at
// refcount zero. Exactly one caller wins; the winner owns reclamation.
func (s *Shard) tryRetire() bool {
	for {
		st := s.state.Load()
		if st&shardRetired != 0 || st>>3 != 0 {
			return false
		}
		if s.state.CompareAndSwap(st, st|shardRetired) {
			return true
		}
	}
}

// doom marks the shard for reclamation at its next idle moment: immediately
// when unpinned, at the last Unpin otherwise.
func (s *Shard) doom() {
	for {
		st := s.state.Load()
		if st&(shardDoomed|shardRetired) != 0 {
			break
		}
		if s.state.CompareAndSwap(st, st|shardDoomed) {
			break
		}
	}
	if s.tryRetire() {
		shardLRU.finishRetire(s, &shardLRU.counters.Drops)
	}
}

// pinned reports whether any pin is currently held (a racy gauge, used only
// for stats).
func (s *Shard) pinnedNow() bool { return s.state.Load()>>3 != 0 }

// shardCache is the process-wide byte-budgeted LRU over every built shard.
// Shards are linked intrusively (lruPrev/lruNext on Shard), head most
// recently used. One instance exists (shardLRU); operands register every
// completed build and the budget is (re)applied at each engine run from its
// Config.
// lruRank pins shardCache.mu into the dynamic lock-rank hierarchy
// (internal/lockcheck): the same rank and exclusivity the //fastcc:lockrank
// marker below declares to the static lockorder pass, enforced at runtime
// under fastcc_checked.
type lruRank struct{}

func (lruRank) LockRank() (int, bool) { return 1, true }
func (lruRank) RankLabel() string     { return "shardCache.mu" }

type shardCache struct {
	mu     lockcheck.Mutex[lruRank] //fastcc:lockrank 1 exclusive -- never nested with Operand.mu, in either order
	budget int64 // bytes; <= 0 means unlimited
	bytes  int64 // resident footprint of listed shards
	head   *Shard
	tail   *Shard
	n      int64

	// tenants maps tenant ID to its accounting state (tenant.go): quota,
	// resident charge, and lifecycle counters. Guarded by mu.
	tenants map[string]*tenantAccount

	counters metrics.CacheCounters
}

// shardLRU is the engine's single shard cache.
var shardLRU shardCache

// resolveBudget maps the Config.CacheBudget convention onto cache semantics:
// > 0 is an explicit byte budget, < 0 disables eviction, 0 derives a default
// from the platform's LLC size.
func resolveBudget(b int64, p model.Platform) int64 {
	switch {
	case b > 0:
		return b
	case b < 0:
		return 0
	default:
		return p.L3Bytes * DefaultBudgetLLCMultiple
	}
}

// SetShardBudget sets the process-wide shard-cache byte budget directly and
// enforces it immediately; bytes <= 0 disables eviction. Engine runs re-apply
// their own Config-derived budget, so direct calls matter mostly for tests
// and for trimming between runs.
func SetShardBudget(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	shardLRU.setBudget(bytes)
}

// CacheStats returns the lifecycle counters plus resident-state gauges of
// the process-wide shard cache.
func CacheStats() metrics.CacheSnapshot {
	return shardLRU.stats()
}

// OutputChunksOutstanding reports how many output chunk buffers are checked
// out of the engine's chunk cache — the leak-accounting gauge tests assert
// returns to its baseline once results are recycled.
func OutputChunksOutstanding() int64 { return outputChunks.Outstanding() }

func (c *shardCache) setBudget(b int64) {
	c.mu.Lock()
	c.budget = b
	victims := c.enforceLocked()
	c.mu.Unlock()
	c.reap(victims)
}

// insert charges a freshly built shard to the cache and applies the budget.
// The shard arrives pinned by its builder, so it can never be its own
// victim.
func (c *shardCache) insert(s *Shard) {
	c.mu.Lock()
	c.pushFrontLocked(s)
	c.bytes += s.bytes
	c.n++
	victims := c.enforceLocked()
	c.mu.Unlock()
	c.reap(victims)
}

// touch marks s most recently used. A shard already reclaimed (not in the
// list) is left alone.
func (c *shardCache) touch(s *Shard) {
	c.mu.Lock()
	if s.inLRU {
		c.unlinkLocked(s)
		c.pushFrontLocked(s)
	}
	c.mu.Unlock()
}

// finishRetire uncharges an already-retired shard and reclaims its storage;
// the caller must have won tryRetire. cause is the counter this reclamation
// charges (Drops for Close/Drop, Evictions via enforce's own path).
func (c *shardCache) finishRetire(s *Shard, cause *atomic.Int64) {
	c.mu.Lock()
	c.removeLocked(s)
	c.unclaimAllLocked(s)
	c.mu.Unlock()
	cause.Add(1)
	s.owner.unmap(s)
	s.recycle()
}

// enforceLocked retires cold unpinned shards until the resident footprint
// fits the budget, unlinking them from the list; the caller recycles the
// returned victims after releasing the lock. Pinned shards are skipped —
// a fully pinned cache may legitimately sit over budget.
//
// Victim order is two passes over the LRU: first the cold shards claimed by
// an over-quota tenant (so one tenant blowing its quota is squeezed before
// anyone else's warm set), then plain coldest-first.
func (c *shardCache) enforceLocked() []*Shard {
	if c.budget <= 0 || c.bytes <= c.budget {
		return nil
	}
	var victims []*Shard
	take := func(s *Shard) {
		c.removeLocked(s)
		c.unclaimAllLocked(s)
		victims = append(victims, s)
	}
	for s := c.tail; s != nil && c.bytes > c.budget; {
		prev := s.lruPrev
		if c.overQuotaClaimLocked(s) && s.tryRetire() {
			take(s)
		}
		s = prev
	}
	for s := c.tail; s != nil && c.bytes > c.budget; {
		prev := s.lruPrev
		if s.tryRetire() {
			take(s)
		}
		s = prev
	}
	return victims
}

// reap unmaps and recycles eviction victims outside the cache lock. With a
// spill directory configured, each victim is offered to the disk tier
// first: a successful spill leaves the shard mapped as a spilled stub
// (retired, tables recycled, disk handle installed) that the next
// Operand.Shard reloads instead of rebuilding. Either way the eviction is
// counted — spilling is what eviction does, not an alternative to it.
func (c *shardCache) reap(victims []*Shard) {
	for _, s := range victims {
		c.counters.Evictions.Add(1)
		c.counters.EvictedBytes.Add(s.bytes)
		if trySpill(s) {
			continue
		}
		s.owner.unmap(s)
		s.recycle()
	}
}

func (c *shardCache) stats() metrics.CacheSnapshot {
	snap := c.counters.Snapshot()
	c.mu.Lock()
	snap.CachedBytes = c.bytes
	snap.Shards = c.n
	for s := c.head; s != nil; s = s.lruNext {
		if s.pinnedNow() {
			snap.PinnedBytes += s.bytes
		}
	}
	c.mu.Unlock()
	files, bytes, _ := SpillDirStats()
	snap.SpillFiles, snap.SpillDiskBytes = int64(files), bytes
	return snap
}

// The LRU link fields are the one deliberately mutable region of a Shard:
// they are lifecycle state owned by this cache and touched only under
// c.mu, never by the immutable-table readers the sealedmut analyzer
// protects.
func (c *shardCache) pushFrontLocked(s *Shard) {
	s.lruPrev = nil    //fastcc:allow sealedmut -- LRU link, guarded by shardLRU.mu
	s.lruNext = c.head //fastcc:allow sealedmut -- LRU link, guarded by shardLRU.mu
	if c.head != nil {
		c.head.lruPrev = s //fastcc:allow sealedmut -- LRU link, guarded by shardLRU.mu
	}
	c.head = s
	if c.tail == nil {
		c.tail = s
	}
	s.inLRU = true //fastcc:allow sealedmut -- LRU link, guarded by shardLRU.mu
}

func (c *shardCache) unlinkLocked(s *Shard) {
	if s.lruPrev != nil {
		s.lruPrev.lruNext = s.lruNext //fastcc:allow sealedmut -- LRU link, guarded by shardLRU.mu
	} else {
		c.head = s.lruNext
	}
	if s.lruNext != nil {
		s.lruNext.lruPrev = s.lruPrev //fastcc:allow sealedmut -- LRU link, guarded by shardLRU.mu
	} else {
		c.tail = s.lruPrev
	}
	s.lruPrev, s.lruNext = nil, nil //fastcc:allow sealedmut -- LRU link, guarded by shardLRU.mu
	s.inLRU = false                 //fastcc:allow sealedmut -- LRU link, guarded by shardLRU.mu
}

// removeLocked uncharges s if it is still listed; safe to call twice (the
// doom path and the eviction path can both reach a shard's retirement).
func (c *shardCache) removeLocked(s *Shard) {
	if !s.inLRU {
		return
	}
	c.unlinkLocked(s)
	c.bytes -= s.bytes
	c.n--
}

// unmap removes s from its operand's shard map if (and only if) the map
// still holds this exact shard — a rebuild may already have replaced the
// key, and that replacement must not be disturbed.
func (o *Operand) unmap(s *Shard) {
	o.mu.Lock()
	if cur, ok := o.shards[s.Key]; ok && cur == s {
		delete(o.shards, s.Key)
	}
	o.mu.Unlock()
}

// Close dooms every cached shard: unpinned ones are reclaimed before Close
// returns, pinned ones at their last Unpin. The Operand remains usable —
// a later Shard call rebuilds — so Close is "drop the cache", not "destroy
// the operand". Callers that wrap transient matrices (the one-shot Contract
// paths) use it to keep dead operands from pinning the global LRU.
func (o *Operand) Close() {
	o.mu.Lock()
	doomed := make([]*Shard, 0, len(o.shards))
	var handles []*spill.Handle
	for k, s := range o.shards {
		// Spilled stubs have nothing in RAM to doom; what they own is the
		// disk image, taken here under o.mu (doom's tryRetire would fail on
		// the already-retired stub and leak the file).
		if h := s.takeSpillLocked(); h != nil {
			handles = append(handles, h)
		} else {
			doomed = append(doomed, s)
		}
		delete(o.shards, k)
	}
	o.mu.Unlock()
	for _, s := range doomed {
		s.doom()
	}
	// Keep-mode directories turn the dropped images into orphans adoptable
	// by a restarted process; otherwise Release deletes them.
	for _, h := range handles {
		h.Dir().Release(h)
	}
}

// Warm builds (or confirms) the shard for key without keeping a pin,
// reporting whether this call performed the build. It is Shard+Unpin: the
// eager-build entry point for the prepared API, where the caller wants the
// Build phase done now but holds no claim against eviction.
func (o *Operand) Warm(key ShardKey, threads int) bool {
	s, built := o.Shard(key, threads)
	s.Unpin()
	return built
}

// Resident reports the operand's cache residency: the summed footprint and
// count of its built, still-live shards. In-flight builds count zero (their
// footprint is not final), retired-but-unmapped entries are excluded — this
// is the non-blocking accounting view the prepared API's SizeBytes/Warm
// surface, not a synchronization point.
func (o *Operand) Resident() (bytes int64, shards int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range o.shards {
		if s.state.Load()&shardRetired != 0 {
			continue
		}
		select {
		case <-s.built:
			bytes += s.bytes
			shards++
		default:
		}
	}
	return bytes, shards
}
