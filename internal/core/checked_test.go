package core

import (
	"strings"
	"testing"

	"fastcc/internal/coo"
	"fastcc/internal/hashtable"
	"fastcc/internal/lockcheck"
	"fastcc/internal/mempool"
)

// TestShardGenerationCheck: a Shard assembled by hand (build never ran) must
// fail the generation check at its tile accessors under fastcc_checked, and
// behave like the plain field reads otherwise.
func TestShardGenerationCheck(t *testing.T) {
	unbuilt := &Shard{
		Key:    ShardKey{Tile: 4, Rep: RepHash},
		sealed: make([]*hashtable.Sealed, 1), //fastcc:allow sealedmut -- test forges a half-built shard on purpose
	}
	defer func() {
		r := recover()
		if mempool.Checked && r == nil {
			t.Fatal("fastcc_checked build read tiles of a shard whose build never completed")
		}
		if !mempool.Checked && r != nil {
			t.Fatalf("normal build panicked: %v", r)
		}
	}()
	if got := unbuilt.sealedAt(0); got != nil {
		t.Fatalf("sealedAt(0) = %v on an empty tile array, want nil", got)
	}
}

// TestSpilledShardGenerationCheck: a shard whose tables were reclaimed after
// its image moved to the disk tier carries the spilled generation stamp; any
// reader that kept a reference to the old in-RAM shard across the spill must
// hit the mid-spill panic under fastcc_checked. The shard is forged the same
// way TestShardGenerationCheck does — a genuinely spilled shard nils its
// sealed slice, so reaching the stamp check in a normal build requires the
// slice to still be allocated.
func TestSpilledShardGenerationCheck(t *testing.T) {
	spilled := &Shard{
		Key:    ShardKey{Tile: 4, Rep: RepHash},
		sealed: make([]*hashtable.Sealed, 1), //fastcc:allow sealedmut -- test forges a mid-spill shard on purpose
	}
	spilled.stampBuilt()
	spilled.stampSpilled()
	defer func() {
		r := recover()
		if mempool.Checked {
			if r == nil {
				t.Fatal("fastcc_checked build read tiles of a shard reclaimed mid-spill")
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "mid-spill") {
				t.Fatalf("panic %v, want the mid-spill generation message", r)
			}
		}
		if !mempool.Checked && r != nil {
			t.Fatalf("normal build panicked: %v", r)
		}
	}()
	if got := spilled.sealedAt(0); got != nil {
		t.Fatalf("sealedAt(0) = %v on a spilled stub, want nil", got)
	}
}

// TestShardBuildVerifiesMatrixStamp: under fastcc_checked, mutating the
// matrixized operand through the original slices after NewOperand must
// panic at the next shard build — the cached tables would otherwise index
// into silently different data.
func TestShardBuildVerifiesMatrixStamp(t *testing.T) {
	m := &coo.Matrix{
		Ext: []uint64{0, 1, 3}, Ctr: []uint64{0, 2, 3}, Val: []float64{1, 2, 3},
		ExtDim: 4, CtrDim: 4,
	}
	op := NewOperand(m)
	m.Val[0] = 42 // deliberate caller mutation after handing the matrix over
	defer func() {
		r := recover()
		if coo.Checked && r == nil {
			t.Fatal("fastcc_checked build built a shard over a matrix mutated after NewOperand")
		}
		if !coo.Checked && r != nil {
			t.Fatalf("normal build panicked: %v", r)
		}
	}()
	s, _ := op.Shard(ShardKey{Tile: 2, Rep: RepHash}, 1)
	s.Unpin()
	op.Close()
}

// TestBuiltShardPassesGenerationCheck pins the happy path: a shard produced
// by Operand.Shard reads clean through the checked accessors.
func TestBuiltShardPassesGenerationCheck(t *testing.T) {
	m := &coo.Matrix{
		Ext: []uint64{0, 1, 3}, Ctr: []uint64{0, 2, 3}, Val: []float64{1, 2, 3},
		ExtDim: 4, CtrDim: 4,
	}
	op := NewOperand(m)
	defer op.Close()
	s, built := op.Shard(ShardKey{Tile: 2, Rep: RepHash}, 1)
	if !built {
		t.Fatal("first Shard call did not build")
	}
	defer s.Unpin()
	for i := 0; i < s.Tiles(); i++ {
		_ = s.sealedAt(i)
	}
}

// TestLockRankTwinCatchesInversion nests the two locks the lifecycle
// contract forbids ever holding together — shardLRU.mu (rank 1 exclusive)
// and Operand.mu (rank 2 exclusive) — and requires the fastcc_checked build
// to panic at the second acquisition (internal/lockcheck's dynamic twin of
// the lockorder pass), while the normal build stays silent. The static pass
// flags this shape on paths it can see; the twin catches whatever path
// actually ran, including ones reaching the locks through calls the static
// call graph reports as opaque.
func TestLockRankTwinCatchesInversion(t *testing.T) {
	op := &Operand{}
	shardLRU.mu.Lock()
	defer shardLRU.mu.Unlock()
	defer func() {
		r := recover()
		if lockcheck.Checked && r == nil {
			t.Fatal("fastcc_checked build did not panic on Operand.mu acquired under shardLRU.mu")
		}
		if !lockcheck.Checked && r != nil {
			t.Fatalf("normal build panicked: %v", r)
		}
	}()
	op.mu.Lock()
	op.mu.Unlock()
}
