//go:build !fastcc_checked

package core

// checkedShard is the zero-sized placeholder for the fastcc_checked
// generation stamp; normal builds carry no lifetime state and the tile
// accessors' checks compile to nothing.
type checkedShard struct{}

func (s *Shard) stampBuilt()       {}
func (s *Shard) stampRetired()     {}
func (s *Shard) stampSpilled()     {}
func (s *Shard) checkBuilt(string) {}
