// Package testutil provides shared test helpers. The leak-accounting
// helpers here assert that recycling pools end a test where they started:
// every gauge is a closure over some Outstanding()-style counter, so the
// package stays import-cycle-free (internal tests living in package core can
// hand it core gauges without testutil importing core).
package testutil

import "testing"

// Gauge is one named leak counter: Read reports how many resources are
// currently checked out (vended minus returned). A balanced workload leaves
// a gauge where it found it.
type Gauge struct {
	Name string
	Read func() int64
}

// Baseline is a snapshot of a gauge set, captured before the workload under
// test runs.
type Baseline struct {
	gauges []Gauge
	before []int64
}

// Capture records the gauges' current values. Call before the workload, then
// Assert after it (and after every recycle call the workload owes).
func Capture(gauges ...Gauge) *Baseline {
	b := &Baseline{gauges: gauges, before: make([]int64, len(gauges))}
	for i, g := range gauges {
		b.before[i] = g.Read()
	}
	return b
}

// Assert fails the test for every gauge that drifted from its captured
// value — resources vended during the workload that never came back.
func (b *Baseline) Assert(t testing.TB) {
	t.Helper()
	for i, g := range b.gauges {
		if now := g.Read(); now != b.before[i] {
			t.Errorf("leak: gauge %s = %d, was %d before the workload (%+d outstanding)",
				g.Name, now, b.before[i], now-b.before[i])
		}
	}
}

// AssertZero fails the test for every gauge not at exactly zero — for
// counters whose absolute value is meaningful (e.g. resident bytes after a
// full drop).
func AssertZero(t testing.TB, gauges ...Gauge) {
	t.Helper()
	for _, g := range gauges {
		if now := g.Read(); now != 0 {
			t.Errorf("leak: gauge %s = %d, want 0", g.Name, now)
		}
	}
}
