package scheduler

import (
	"sync/atomic"
	"testing"
)

func BenchmarkPoolTicketOverhead(b *testing.B) {
	// Measures the dynamic-scheduling cost per (trivial) task.
	var sink atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	Pool(4, b.N, func(_, task int) {
		sink.Add(int64(task & 1))
	})
}

func BenchmarkTeamsSpawn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Teams(4, func(_, _ int) {}, func(_, _ int) {})
	}
}
