package scheduler

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolCtxCompletesUncanceled(t *testing.T) {
	const tasks = 200
	var hits [tasks]atomic.Int32
	err := PoolCtx(context.Background(), 4, tasks, func(_, task int) {
		hits[task].Add(1)
	})
	if err != nil {
		t.Fatalf("PoolCtx: %v", err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestPoolCtxStopsAtTaskBoundary(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := PoolCtx(ctx, workers, 100000, func(_, task int) {
			if ran.Add(1) == 3 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v want context.Canceled", workers, err)
		}
		// Cancellation is cooperative: in-flight tasks finish, but no more
		// than one extra claim per worker can slip through.
		if got := ran.Load(); got > int64(3+workers) {
			t.Fatalf("workers=%d: %d tasks ran after cancel", workers, got)
		}
	}
}

func TestPoolCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := PoolCtx(ctx, 2, 10, func(_, task int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v", err)
	}
	if got := ran.Load(); got > 2 {
		t.Fatalf("%d tasks ran under pre-canceled context", got)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("explicit count ignored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("default count wrong")
	}
}

func TestPoolCoversAllTasksOnce(t *testing.T) {
	const tasks = 1000
	var hits [tasks]atomic.Int32
	Pool(8, tasks, func(_, task int) {
		hits[task].Add(1)
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestPoolSingleWorkerSequential(t *testing.T) {
	order := []int{}
	Pool(1, 5, func(w, task int) {
		if w != 0 {
			t.Fatalf("worker %d in single-worker pool", w)
		}
		order = append(order, task)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker should be in order: %v", order)
		}
	}
}

func TestPoolZeroTasks(t *testing.T) {
	ran := false
	Pool(4, 0, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("fn ran with zero tasks")
	}
}

func TestPoolWorkerIDsBounded(t *testing.T) {
	var bad atomic.Bool
	Pool(3, 100, func(w, _ int) {
		if w < 0 || w >= 3 {
			bad.Store(true)
		}
	})
	if bad.Load() {
		t.Fatal("worker id out of range")
	}
}

func TestTeamsBothRunAndSizesPartition(t *testing.T) {
	var aRuns, bRuns atomic.Int32
	var aSize, bSize atomic.Int32
	Teams(5, func(w, size int) {
		aRuns.Add(1)
		aSize.Store(int32(size))
		if w < 0 || w >= size {
			t.Errorf("team A worker %d of %d", w, size)
		}
	}, func(w, size int) {
		bRuns.Add(1)
		bSize.Store(int32(size))
	})
	if aSize.Load() != 3 || bSize.Load() != 2 {
		t.Fatalf("team sizes %d/%d want 3/2", aSize.Load(), bSize.Load())
	}
	if aRuns.Load() != 3 || bRuns.Load() != 2 {
		t.Fatalf("team runs %d/%d", aRuns.Load(), bRuns.Load())
	}
}

func TestTeamsSingleWorker(t *testing.T) {
	var a, b atomic.Int32
	Teams(1, func(_, size int) { a.Store(int32(size)) }, func(_, size int) { b.Store(int32(size)) })
	if a.Load() != 1 || b.Load() != 1 {
		t.Fatalf("teams with one worker: %d/%d", a.Load(), b.Load())
	}
}

func TestStaticPartition(t *testing.T) {
	const n = 100
	var owner [n]atomic.Int32
	for i := range owner {
		owner[i].Store(-1)
	}
	Static(4, func(w, workers int) {
		if workers != 4 {
			t.Errorf("workers=%d", workers)
		}
		for i := w; i < n; i += workers {
			if !owner[i].CompareAndSwap(-1, int32(w)) {
				t.Errorf("tile %d claimed twice", i)
			}
		}
	})
	for i := range owner {
		if owner[i].Load() != int32(i%4) {
			t.Fatalf("tile %d owned by %d", i, owner[i].Load())
		}
	}
}
