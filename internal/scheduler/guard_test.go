package scheduler

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestGuardBalancedPerWorker: every worker goroutine the pool spawns must
// run Acquire exactly once before its first task and Release exactly once
// after its last — the bracket the engine's shard pins depend on.
func TestGuardBalancedPerWorker(t *testing.T) {
	for _, workers := range []int{1, 4, 9} {
		const tasks = 120
		var acquires, releases, ran atomic.Int64
		inBracket := make([]atomic.Bool, Workers(workers))
		g := Guard{
			Acquire: func(w int) { acquires.Add(1); inBracket[w].Store(true) },
			Release: func(w int) { releases.Add(1); inBracket[w].Store(false) },
		}
		err := PoolCtxBatchGuarded(context.Background(), workers, tasks, 7, g, func(w, task int) {
			if !inBracket[w].Load() {
				t.Errorf("workers=%d: task %d ran outside worker %d's acquire/release bracket", workers, task, w)
			}
			ran.Add(1)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != tasks {
			t.Fatalf("workers=%d: ran %d of %d tasks", workers, ran.Load(), tasks)
		}
		if acquires.Load() != releases.Load() {
			t.Fatalf("workers=%d: %d acquires vs %d releases", workers, acquires.Load(), releases.Load())
		}
		if acquires.Load() == 0 {
			t.Fatalf("workers=%d: guard never ran", workers)
		}
	}
}

// TestGuardReleasesOnCancellation: a canceled run must still pair every
// Acquire with a Release — a leaked pin would block eviction forever.
func TestGuardReleasesOnCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var acquires, releases atomic.Int64
		g := Guard{
			Acquire: func(int) { acquires.Add(1) },
			Release: func(int) { releases.Add(1) },
		}
		err := PoolCtxBatchGuarded(ctx, workers, 500, 3, g, func(_, task int) {
			if task == 5 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want context.Canceled", workers, err)
		}
		if acquires.Load() != releases.Load() || acquires.Load() == 0 {
			t.Fatalf("workers=%d: %d acquires vs %d releases after cancellation", workers, acquires.Load(), releases.Load())
		}
		cancel()
	}
}

// TestGuardZeroValueIsNoop: PoolCtxBatch must behave identically through
// its guarded implementation with a zero Guard (nil funcs).
func TestGuardZeroValueIsNoop(t *testing.T) {
	var ran atomic.Int64
	if err := PoolCtxBatchGuarded(context.Background(), 3, 50, 1, Guard{}, func(_, _ int) { ran.Add(1) }); err != nil {
		t.Fatalf("zero guard: %v", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("zero guard ran %d of 50 tasks", ran.Load())
	}
}

// TestGuardZeroTasks: a run with nothing to do must not invoke the guard at
// all (no worker goroutines start).
func TestGuardZeroTasks(t *testing.T) {
	var acquires atomic.Int64
	g := Guard{Acquire: func(int) { acquires.Add(1) }, Release: func(int) {}}
	if err := PoolCtxBatchGuarded(context.Background(), 4, 0, 1, g, func(_, _ int) {}); err != nil {
		t.Fatalf("zero tasks: %v", err)
	}
	if acquires.Load() != 0 {
		t.Fatalf("guard acquired %d times with zero tasks", acquires.Load())
	}
}
