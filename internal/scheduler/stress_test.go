package scheduler

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

// The stress tests below are shaped for the race detector: many workers,
// tasks that finish in nanoseconds (maximum claim contention on the atomic
// ticket), and a shared sink indexed by worker id. The engine hands each
// worker id a private accumulator and output pool, so the invariant under
// test is that a Pool/Teams worker id is never held by two live goroutines
// at once — if it ever is, the unsynchronized writes to sink[w] here are a
// detector hit, not a flaky counter.
//
// Two details are load-bearing, verified by sabotaging Pool to hand out
// duplicate ids and checking the detector fires:
//
//   - NO atomics inside the task bodies. An atomic on a shared variable
//     gives the detector happens-before edges between workers and hides
//     exactly the duplicate-id race these tests exist to catch. Totals
//     live in the per-worker slots and are summed after the barrier (the
//     skeleton's own Wait provides the happens-before for that read).
//   - runtime.Gosched() in the Pool task body. On a single-CPU box one
//     worker can drain the whole ticket queue inside a scheduler quantum,
//     and the ticket atomic's release/acquire chain then orders every
//     write — no unordered pair is ever formed. Yielding per task forces
//     workers to interleave claims, making detection deterministic.

// sinkSlot keeps per-worker counters on separate cache lines so the stress
// loop measures scheduling races, not false sharing.
type sinkSlot struct {
	claims int64
	sum    int64
	_      [6]int64
}

func TestPoolRaceStress(t *testing.T) {
	const (
		workers = 64
		tasks   = 20_000
		rounds  = 4
	)
	for round := 0; round < rounds; round++ {
		var sink [workers]sinkSlot // worker-id-indexed, intentionally non-atomic
		Pool(workers, tasks, func(w, task int) {
			if w < 0 || w >= workers {
				t.Errorf("worker id %d out of range", w)
				return
			}
			sink[w].claims++ // racy iff two goroutines share an id
			sink[w].sum += int64(task)
			runtime.Gosched()
		})
		var claimed, sum int64
		for w := range sink {
			claimed += sink[w].claims
			sum += sink[w].sum
		}
		if claimed != tasks {
			t.Fatalf("round %d: %d task claims for %d tasks", round, claimed, tasks)
		}
		if want := int64(tasks) * (tasks - 1) / 2; sum != want {
			t.Fatalf("round %d: task id sum %d want %d (lost or duplicated tasks)", round, sum, want)
		}
	}
}

func TestPoolBatchRaceStress(t *testing.T) {
	// The batched claim path must preserve the Pool invariants under the
	// race detector: every task runs exactly once, and a worker id is never
	// live on two goroutines at once (the non-atomic sink writes would be a
	// detector hit). Batch sizes bracket the auto-chosen range, including
	// batches larger than the task count.
	const (
		workers = 64
		tasks   = 20_000
	)
	for _, batch := range []int{1, 7, 64, tasks + 1} {
		var sink [workers]sinkSlot // worker-id-indexed, intentionally non-atomic
		err := PoolCtxBatch(context.Background(), workers, tasks, batch, func(w, task int) {
			if w < 0 || w >= workers {
				t.Errorf("worker id %d out of range", w)
				return
			}
			sink[w].claims++ // racy iff two goroutines share an id
			sink[w].sum += int64(task)
			runtime.Gosched()
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		var claimed, sum int64
		for w := range sink {
			claimed += sink[w].claims
			sum += sink[w].sum
		}
		if claimed != tasks {
			t.Fatalf("batch %d: %d task claims for %d tasks", batch, claimed, tasks)
		}
		if want := int64(tasks) * (tasks - 1) / 2; sum != want {
			t.Fatalf("batch %d: task id sum %d want %d (lost or duplicated tasks)", batch, sum, want)
		}
	}
}

func TestPoolBatchCancellationAtTaskBoundaries(t *testing.T) {
	// Cancel mid-run and verify (a) the pool returns ctx.Err(), (b) workers
	// stop within one task of the cancellation even inside a claimed batch:
	// the executed count must stay far below the task count, bounded by the
	// tasks already in flight plus one per worker.
	const (
		workers = 8
		tasks   = 1 << 20
		batch   = 64
		stopAt  = 100
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	err := PoolCtxBatch(ctx, workers, tasks, batch, func(w, task int) {
		if executed.Add(1) == stopAt {
			cancel()
		}
	})
	if err == nil || ctx.Err() == nil {
		t.Fatalf("canceled pool returned %v", err)
	}
	got := executed.Load()
	// After cancel, each worker may finish at most the task it is running;
	// the batch remainder (up to batch-1 tasks per worker) must NOT run.
	if limit := int64(stopAt + workers); got > limit {
		t.Fatalf("%d tasks ran after cancellation (limit %d): batch remainder not abandoned", got, limit)
	}
	if got < stopAt {
		t.Fatalf("only %d tasks ran, cancel fired at %d", got, stopAt)
	}
}

func TestPoolBatchSerialCancellation(t *testing.T) {
	// The single-worker fast path checks ctx between tasks too.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	err := PoolCtxBatch(ctx, 1, 1000, 16, func(w, task int) {
		ran++
		if ran == 10 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("want ctx error")
	}
	if ran != 10 {
		t.Fatalf("serial path ran %d tasks after cancel at 10", ran)
	}
}

func TestClaimBatchBounds(t *testing.T) {
	if b := ClaimBatch(10, 8); b != 1 {
		t.Fatalf("scarce tasks: %d", b)
	}
	if b := ClaimBatch(1<<20, 4); b != maxClaimBatch {
		t.Fatalf("plentiful tasks should cap at %d: %d", maxClaimBatch, b)
	}
	if b := ClaimBatch(0, 8); b != 1 {
		t.Fatalf("zero tasks: %d", b)
	}
	mid := ClaimBatch(8*claimSlack*10, 8)
	if mid != 10 {
		t.Fatalf("mid range: %d want 10", mid)
	}
}

func TestTeamsRaceStress(t *testing.T) {
	const (
		threads = 32
		iters   = 5_000
		rounds  = 4
	)
	for round := 0; round < rounds; round++ {
		// Separate per-team sinks: worker ids are only unique within a team.
		var sinkA, sinkB [threads]sinkSlot
		hammer := func(sink *[threads]sinkSlot) func(w, size int) {
			return func(w, size int) {
				if w < 0 || w >= size || size > threads {
					t.Errorf("worker %d of team size %d", w, size)
					return
				}
				for i := 0; i < iters; i++ {
					sink[w].claims++
					if i&63 == 0 {
						runtime.Gosched() // interleave the teams on few cores
					}
				}
			}
		}
		Teams(threads, hammer(&sinkA), hammer(&sinkB))
		var got int64
		for w := 0; w < threads; w++ {
			got += sinkA[w].claims + sinkB[w].claims
		}
		if got != int64(threads)*iters {
			t.Fatalf("round %d: sink total %d want %d", round, got, int64(threads)*iters)
		}
	}
}

func TestStaticRaceStress(t *testing.T) {
	const (
		workers = 48
		slots   = 10_000
	)
	sink := make([]int64, slots) // cyclic ownership: worker w owns i % workers == w
	Static(workers, func(w, n int) {
		for i := w; i < slots; i += n {
			sink[i]++ // racy iff the cyclic partition overlaps
		}
	})
	for i, v := range sink {
		if v != 1 {
			t.Fatalf("slot %d written %d times", i, v)
		}
	}
}
