// Package scheduler provides the two parallel skeletons FaSTCC needs
// (paper Section 4.2):
//
//   - Teams: two worker teams running concurrently (the paper's nested
//     OpenMP parallel regions where half the threads build HL and half
//     build HR);
//   - Pool: a dynamic task queue over an index range, the Go substitute for
//     Taskflow — tasks are claimed with an atomic ticket so load imbalance
//     between tile-tile contractions is absorbed at run time.
package scheduler

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested thread count: n <= 0 selects GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Teams runs two functions concurrently, each with a team of workers. With
// n total workers, team A gets ceil(n/2) and team B gets the rest (minimum
// one each). Each worker invocation receives its worker id and team size;
// Teams returns when all workers of both teams finish.
func Teams(n int, teamA, teamB func(worker, teamSize int)) {
	n = Workers(n)
	sizeA := (n + 1) / 2
	sizeB := n - sizeA
	if sizeB == 0 {
		sizeB = 1 // run teams sequentially-concurrent with one worker each
	}
	var wg sync.WaitGroup
	for w := 0; w < sizeA; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			teamA(w, sizeA)
		}(w)
	}
	for w := 0; w < sizeB; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			teamB(w, sizeB)
		}(w)
	}
	wg.Wait()
}

// Pool runs fn(worker, task) for every task in [0, tasks), claimed
// dynamically by an atomic ticket counter across `workers` goroutines. Each
// worker keeps its id for the task's lifetime, so fn can use worker-local
// scratch state (accumulators, output pools). Returns when all tasks finish.
func Pool(workers, tasks int, fn func(worker, task int)) {
	// context.Background() is never canceled, so the per-task Err() check in
	// PoolCtx reduces to a nil comparison.
	_ = PoolCtx(context.Background(), workers, tasks, fn)
}

// PoolCtx is Pool with cooperative cancellation: workers stop claiming new
// tasks once ctx is done and PoolCtx returns ctx.Err(). Tasks already
// in flight run to completion — cancellation is observed only at tile-task
// boundaries, so worker-local scratch state is never abandoned mid-task.
// Returns nil when every task ran.
func PoolCtx(ctx context.Context, workers, tasks int, fn func(worker, task int)) error {
	return PoolCtxBatch(ctx, workers, tasks, 1, fn)
}

// ClaimBatch picks a per-claim batch size for PoolCtxBatch: 1 while tasks
// are scarce relative to workers (dynamic balancing matters most), growing
// once tasks >> workers so the atomic ticket stops being a contention
// point, and capped so the tail imbalance stays below ~1/claimSlack of a
// worker's share.
func ClaimBatch(tasks, workers int) int {
	workers = Workers(workers)
	b := tasks / (workers * claimSlack)
	if b < 1 {
		return 1
	}
	if b > maxClaimBatch {
		return maxClaimBatch
	}
	return b
}

const (
	// claimSlack is the minimum number of claims each worker should get so
	// dynamic scheduling still absorbs load imbalance between batches.
	claimSlack = 16
	// maxClaimBatch bounds a single claim so a slow worker cannot strand a
	// large task range behind it.
	maxClaimBatch = 64
)

// PoolCtxBatch is PoolCtx with batched ticket claiming: each atomic
// increment claims up to `batch` consecutive tasks, cutting claim
// contention by that factor when tasks are tiny and plentiful. Cancellation
// is still observed at every task boundary — a canceled context stops a
// worker mid-batch, leaving the rest of its claimed range unexecuted —
// so the latency to stop is one task, not one batch. batch < 1 is treated
// as 1 (identical to PoolCtx).
func PoolCtxBatch(ctx context.Context, workers, tasks, batch int, fn func(worker, task int)) error {
	return PoolCtxBatchGuarded(ctx, workers, tasks, batch, Guard{}, fn)
}

// Guard brackets each worker's participation in a pool run: Acquire runs on
// the worker's own goroutine before its first claim, Release runs (deferred,
// so panics and cancellation cannot skip it) after its last task. The engine
// uses this to pin shard-cache entries for the duration of a worker's
// involvement — readers hold their pins across every task they claim, and
// eviction waits for Release, not for individual tile boundaries. Either
// func may be nil. Workers that never start (tasks exhausted before launch)
// still run the pair: Acquire/Release are balanced exactly once per worker
// goroutine that PoolCtxBatchGuarded spawns.
type Guard struct {
	Acquire func(worker int)
	Release func(worker int)
}

func (g Guard) acquire(w int) {
	if g.Acquire != nil {
		g.Acquire(w)
	}
}

func (g Guard) release(w int) {
	if g.Release != nil {
		g.Release(w)
	}
}

// PoolCtxBatchGuarded is PoolCtxBatch with a per-worker Guard. See Guard for
// the bracket contract; with a zero Guard it is exactly PoolCtxBatch.
func PoolCtxBatchGuarded(ctx context.Context, workers, tasks, batch int, g Guard, fn func(worker, task int)) error {
	workers = Workers(workers)
	if tasks <= 0 {
		return ctx.Err()
	}
	if batch < 1 {
		batch = 1
	}
	if workers > tasks {
		workers = tasks
	}
	if workers == 1 {
		g.acquire(0)
		defer g.release(0)
		for t := 0; t < tasks; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, t)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g.acquire(w)
			defer g.release(w)
			for ctx.Err() == nil {
				hi := next.Add(int64(batch))
				lo := hi - int64(batch)
				if lo >= int64(tasks) {
					return
				}
				if hi > int64(tasks) {
					hi = int64(tasks)
				}
				for t := lo; t < hi; t++ {
					// The claim loop just checked ctx for the batch's first
					// task; re-check before each subsequent one.
					if t > lo && ctx.Err() != nil {
						return
					}
					fn(w, int(t))
				}
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// Static runs fn(worker) on `workers` goroutines and waits; workers derive
// their own index partitioning (used for the cyclic tile-ownership hash
// build where worker w owns tiles i with i % workers == w).
func Static(workers int, fn func(worker, workers int)) {
	workers = Workers(workers)
	if workers == 1 {
		fn(0, 1)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w, workers)
		}(w)
	}
	wg.Wait()
}
