package scheduler

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Admission errors, surfaced to callers (and mapped onto HTTP status codes
// by the server layer).
var (
	// ErrQueueFull reports that both the in-flight slots and the waiting
	// queue are at capacity — the request is rejected immediately rather
	// than queued behind an unbounded backlog.
	ErrQueueFull = errors.New("scheduler: admission queue full")

	// ErrAdmissionClosed reports that the admission controller has been
	// closed; no further requests are accepted.
	ErrAdmissionClosed = errors.New("scheduler: admission closed")
)

// Admission bounds how many contraction requests run concurrently and how
// many may wait behind them. It is the server-side complement of Pool's
// ticket counter: Pool spreads one contraction's tile tasks across worker
// threads, Admission decides how many whole contractions are allowed to
// reach Pool at once, so a burst of clients degrades into orderly queueing
// (with context-deadline eviction) instead of oversubscribing the CPU.
//
// The zero value is not usable; call NewAdmission.
type Admission struct {
	slots  chan struct{} // buffered; one token per in-flight request
	queued atomic.Int64  // requests blocked in Acquire
	limit  int64         // max queued before fast-fail

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed by Close; wakes all waiters
}

// NewAdmission creates a controller admitting at most inflight concurrent
// requests with at most queue further requests waiting. inflight < 1 is
// normalized to 1; queue < 0 to 0 (reject immediately when saturated).
func NewAdmission(inflight, queue int) *Admission {
	if inflight < 1 {
		inflight = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Admission{
		slots: make(chan struct{}, inflight),
		limit: int64(queue),
		done:  make(chan struct{}),
	}
}

// Acquire blocks until an in-flight slot is free, the context is done, or
// the controller closes. On success it returns a release function that must
// be called exactly once when the request finishes (extra calls are no-ops).
// If the waiting queue is already at capacity, Acquire fails fast with
// ErrQueueFull instead of blocking.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot right now skips the queue accounting entirely.
	select {
	case <-a.done:
		return nil, ErrAdmissionClosed
	default:
	}
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), nil
	default:
	}

	// Saturated: join the bounded queue or fail fast.
	if a.queued.Add(1) > a.limit {
		a.queued.Add(-1)
		return nil, ErrQueueFull
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-a.done:
		return nil, ErrAdmissionClosed
	}
}

// releaseFunc returns a one-shot token release. sync.Once keeps a double
// call (easy to write with defers on error paths) from corrupting the
// semaphore.
func (a *Admission) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() { <-a.slots })
	}
}

// InFlight reports how many admitted requests have not yet released.
func (a *Admission) InFlight() int { return len(a.slots) }

// Queued reports how many requests are currently blocked in Acquire.
func (a *Admission) Queued() int { return int(a.queued.Load()) }

// Close rejects all future Acquires and wakes every queued waiter with
// ErrAdmissionClosed. Requests already admitted keep their slots; their
// release functions remain valid. Close is idempotent.
func (a *Admission) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.closed {
		a.closed = true
		close(a.done)
	}
}

// Drain closes the controller and then blocks until every admitted request
// has released its slot, i.e. the server is quiescent.
func (a *Admission) Drain() {
	a.Close()
	for i := 0; i < cap(a.slots); i++ {
		a.slots <- struct{}{}
	}
	// Leave the semaphore full so any stray release just frees a token.
}
