package scheduler

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionBoundsInFlight(t *testing.T) {
	a := NewAdmission(2, 4)
	defer a.Drain()

	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Third request must queue, not run.
	admitted := make(chan struct{})
	go func() {
		r3, err := a.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			close(admitted)
			return
		}
		close(admitted)
		r3()
	}()
	select {
	case <-admitted:
		t.Fatal("third request admitted beyond the in-flight bound")
	case <-time.After(20 * time.Millisecond):
	}
	if got := a.Queued(); got != 1 {
		t.Fatalf("Queued = %d, want 1", got)
	}

	r1() // frees a slot; the queued request proceeds
	select {
	case <-admitted:
	case <-time.After(time.Second):
		t.Fatal("queued request not admitted after a release")
	}
	r2()
}

func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(1, 1)
	defer a.Drain()

	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()

	// One waiter fills the queue.
	var wg sync.WaitGroup
	wg.Add(1)
	waiting := make(chan struct{})
	go func() {
		defer wg.Done()
		close(waiting)
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		if r, err := a.Acquire(ctx); err == nil {
			r()
		}
	}()
	<-waiting
	for a.Queued() != 1 { // wait until the goroutine is inside Acquire
		time.Sleep(time.Millisecond)
	}

	// The next arrival is rejected immediately, not blocked.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Acquire over queue capacity: err = %v, want ErrQueueFull", err)
	}
	wg.Wait()
}

func TestAdmissionContextCancellation(t *testing.T) {
	a := NewAdmission(1, 8)
	defer a.Drain()

	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()

	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		errs <- err
	}()
	for a.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errs:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter: err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled waiter did not return")
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("Queued = %d after cancellation, want 0", got)
	}

	// A deadline behaves the same way, reporting DeadlineExceeded.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dcancel()
	if _, err := a.Acquire(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline waiter: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestAdmissionCloseWakesWaiters(t *testing.T) {
	a := NewAdmission(1, 8)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 4
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := a.Acquire(context.Background())
			errs <- err
		}()
	}
	for a.Queued() != waiters {
		time.Sleep(time.Millisecond)
	}
	a.Close()
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrAdmissionClosed) {
				t.Fatalf("waiter woken by Close: err = %v, want ErrAdmissionClosed", err)
			}
		case <-time.After(time.Second):
			t.Fatal("waiter not woken by Close")
		}
	}

	// After Close, new arrivals are rejected; the admitted request's release
	// stays valid and Drain waits for it.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrAdmissionClosed) {
		t.Fatalf("Acquire after Close: err = %v, want ErrAdmissionClosed", err)
	}
	drained := make(chan struct{})
	go func() {
		a.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a request was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	r1()
	select {
	case <-drained:
	case <-time.After(time.Second):
		t.Fatal("Drain did not return after the last release")
	}
	a.Close() // idempotent
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := NewAdmission(1, 0)
	defer a.Drain()

	r, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r()
	r() // second call must not free a phantom slot
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d after double release + reacquire, want 1", got)
	}
	r2()
}

func TestAdmissionConcurrentStress(t *testing.T) {
	const inflight, queue = 4, 16
	a := NewAdmission(inflight, queue)
	defer a.Drain()

	var peak, cur, admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 128; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			r, err := a.Acquire(ctx)
			if err != nil {
				if !errors.Is(err, ErrQueueFull) && !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("unexpected admission error: %v", err)
				}
				rejected.Add(1)
				return
			}
			defer r()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			admitted.Add(1)
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if peak.Load() > inflight {
		t.Fatalf("observed %d concurrent admissions, bound is %d", peak.Load(), inflight)
	}
	if admitted.Load() == 0 {
		t.Fatal("no request was admitted")
	}
	t.Logf("admitted=%d rejected=%d peak=%d", admitted.Load(), rejected.Load(), peak.Load())
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after all releases, want 0", got)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("Queued = %d after quiescence, want 0", got)
	}
}
