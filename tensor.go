package fastcc

import "fastcc/internal/coo"

// Tensor-algebra conveniences re-exported from the COO layer. The Tensor
// alias already carries methods Sort, Dedup, DropZeros, Permute, Scale,
// SliceMode, Norm2 and ModeHistogram; the free functions below operate on
// pairs.

// Add returns a + b elementwise (identical dims required); the result is
// canonicalized and exact cancellations are dropped.
func Add(a, b *Tensor) (*Tensor, error) { return coo.Add(a, b) }

// Axpy returns alpha·x + y without mutating the operands.
func Axpy(alpha float64, x, y *Tensor) (*Tensor, error) { return coo.Axpy(alpha, x, y) }
