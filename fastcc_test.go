package fastcc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fastcc/internal/coo"
	"fastcc/internal/ref"
)

func randomTensor(rng *rand.Rand, dims []uint64, nnz int) *Tensor {
	t := NewTensor(dims, nnz)
	coords := make([]uint64, len(dims))
	for i := 0; i < nnz; i++ {
		for m, d := range dims {
			coords[m] = rng.Uint64() % d
		}
		t.Append(coords, float64(rng.Intn(9)+1))
	}
	return t
}

func TestContractMatrixMultiply(t *testing.T) {
	// 2x2 matrix multiply through the full tensor pipeline.
	l := NewTensor([]uint64{2, 2}, 4)
	l.Append([]uint64{0, 0}, 1)
	l.Append([]uint64{0, 1}, 2)
	l.Append([]uint64{1, 1}, 3)
	r := NewTensor([]uint64{2, 2}, 4)
	r.Append([]uint64{0, 0}, 4)
	r.Append([]uint64{1, 0}, 5)
	r.Append([]uint64{1, 1}, 6)
	out, st, err := Contract(l, r, Spec{CtrLeft: []int{1}, CtrRight: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Order() != 2 || out.Dims[0] != 2 || out.Dims[1] != 2 {
		t.Fatalf("output shape %v", out.Dims)
	}
	want := map[[2]uint64]float64{{0, 0}: 14, {0, 1}: 12, {1, 0}: 15, {1, 1}: 18}
	for k, v := range want {
		if got := out.At([]uint64{k[0], k[1]}); got != v {
			t.Fatalf("O[%d,%d]=%g want %g", k[0], k[1], got, v)
		}
	}
	if st.OutputNNZ != 4 || st.Total <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestContractHigherOrderAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := randomTensor(rng, []uint64{6, 7, 8}, 120)
	r := randomTensor(rng, []uint64{8, 5, 6}, 120)
	// Contract l mode 2 with r mode 0 AND l mode 0 with r mode 2.
	spec := Spec{CtrLeft: []int{2, 0}, CtrRight: []int{0, 2}}
	got, _, err := Contract(l, r, spec, WithThreads(3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Contract(l, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatalf("mismatch: got %d nnz want %d", got.NNZ(), want.NNZ())
	}
	// Output modes: l ext (mode 1) then r ext (mode 1): dims 7 x 5.
	if len(got.Dims) != 2 || got.Dims[0] != 7 || got.Dims[1] != 5 {
		t.Fatalf("output dims %v", got.Dims)
	}
}

func TestSelfContract(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomTensor(rng, []uint64{9, 4, 5}, 60)
	got, _, err := SelfContract(a, []int{0}, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Contract(a, a, Spec{CtrLeft: []int{0}, CtrRight: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("self-contraction mismatch")
	}
	if len(got.Dims) != 4 {
		t.Fatalf("output order %d want 4", len(got.Dims))
	}
}

func TestOperandSwapSymmetry(t *testing.T) {
	// L·R and R·L give the same tensor up to mode permutation; verify via
	// reference on transposed spec.
	rng := rand.New(rand.NewSource(13))
	l := randomTensor(rng, []uint64{5, 6}, 12)
	r := randomTensor(rng, []uint64{6, 4}, 12)
	lr, _, err := Contract(l, r, Spec{CtrLeft: []int{1}, CtrRight: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	rl, _, err := Contract(r, l, Spec{CtrLeft: []int{0}, CtrRight: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// lr has dims (5,4); rl has dims (4,5); compare transposed.
	if lr.NNZ() != rl.NNZ() {
		t.Fatalf("nnz differ: %d vs %d", lr.NNZ(), rl.NNZ())
	}
	for i := 0; i < rl.NNZ(); i++ {
		if got := lr.At([]uint64{rl.Coords[1][i], rl.Coords[0][i]}); got != rl.Vals[i] {
			t.Fatalf("transpose mismatch at %d", i)
		}
	}
}

func TestContractOptionsApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomTensor(rng, []uint64{40, 40, 10}, 300)
	out, st, err := SelfContract(a, []int{2},
		WithThreads(2), WithTileSize(64, 64), WithAccumulator(AccumSparse),
		WithPlatform(Desktop8), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if st.TileL != 64 || st.TileR != 64 {
		t.Fatalf("tile override ignored: %dx%d", st.TileL, st.TileR)
	}
	if st.Threads != 2 {
		t.Fatalf("threads=%d", st.Threads)
	}
	if st.Counters.Updates == 0 {
		t.Fatal("metrics not collected")
	}
	want, _ := ref.Contract(a, a, Spec{CtrLeft: []int{2}, CtrRight: []int{2}})
	if !Equal(out, want) {
		t.Fatal("mismatch with options")
	}
}

func TestContractValidation(t *testing.T) {
	a := NewTensor([]uint64{4, 4}, 0)
	b := NewTensor([]uint64{5, 5}, 0)
	if _, _, err := Contract(a, b, Spec{CtrLeft: []int{0}, CtrRight: []int{0}}); err == nil {
		t.Fatal("extent mismatch should fail")
	}
	if _, _, err := Contract(a, a, Spec{}); err == nil {
		t.Fatal("empty spec should fail")
	}
	bad := NewTensor([]uint64{4, 4}, 1)
	bad.Append([]uint64{1, 1}, 1)
	bad.Coords[0][0] = 9
	if _, _, err := Contract(bad, a, Spec{CtrLeft: []int{0}, CtrRight: []int{0}}); err == nil {
		t.Fatal("invalid operand should fail")
	}
}

func TestContractAllModesContracted(t *testing.T) {
	// Full inner product: scalar output (0 external modes each side).
	l := NewTensor([]uint64{3, 3}, 2)
	l.Append([]uint64{1, 1}, 2)
	l.Append([]uint64{0, 2}, 3)
	r := l.Clone()
	out, _, err := Contract(l, r, Spec{CtrLeft: []int{0, 1}, CtrRight: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Order() != 0 || out.NNZ() != 1 || out.Vals[0] != 13 {
		t.Fatalf("inner product: order=%d nnz=%d vals=%v", out.Order(), out.NNZ(), out.Vals)
	}
}

func TestContractPropertyAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := uint64(rng.Intn(8) + 1)
		l := randomTensor(rng, []uint64{uint64(rng.Intn(10) + 1), c, uint64(rng.Intn(10) + 1)}, rng.Intn(80))
		r := randomTensor(rng, []uint64{uint64(rng.Intn(10) + 1), c}, rng.Intn(80))
		spec := Spec{CtrLeft: []int{1}, CtrRight: []int{1}}
		got, _, err := Contract(l, r, spec, WithThreads(rng.Intn(4)+1))
		if err != nil {
			return false
		}
		want, err := ref.Contract(l, r, spec)
		if err != nil {
			return false
		}
		return Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTNSHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomTensor(rng, []uint64{6, 6}, 10)
	a.Dedup()
	var sb strings.Builder
	if err := WriteTNS(&sb, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadTNS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("round trip")
	}
	dir := t.TempDir()
	path := dir + "/x.tns"
	if err := SaveTNS(path, a); err != nil {
		t.Fatal(err)
	}
	c, err := LoadTNS(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(a, c, 0) {
		t.Fatal("file round trip")
	}
	if _, err := LoadTNS(dir + "/missing.tns"); err == nil {
		t.Fatal("missing file should error")
	}
}

var _ = coo.ErrShape // keep explicit dependency for doc cross-reference

func TestFileFormatDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := randomTensor(rng, []uint64{12, 9}, 30)
	a.Dedup()
	dir := t.TempDir()
	for _, name := range []string{"a.tns", "a.tns.gz", "a.btns", "a.btns.gz"} {
		path := dir + "/" + name
		if err := SaveTNS(path, a); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := LoadTNS(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !Equal(a, got) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestBTNSStreamHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randomTensor(rng, []uint64{7, 7, 7}, 25)
	a.Dedup()
	var sb strings.Builder
	if err := WriteBTNS(&sb, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBTNS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, got) {
		t.Fatal("stream round trip mismatch")
	}
}
