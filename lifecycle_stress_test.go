package fastcc

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"fastcc/internal/ref"
)

// TestLifecycleStress hammers the shard-cache lifecycle from the public API:
// several goroutines loop ContractPrepared over the same two *Sharded
// operands while a dropper goroutine concurrently calls Drop on both and the
// contenders alternate between a 1-byte budget (every run evicts) and an
// unlimited one. Every result is checked against a single precomputed
// reference, so any torn read of a mid-reclaim shard shows up as a wrong
// answer even when it doesn't crash. Run it under -race and under
// -tags fastcc_checked (make test-lifecycle does both); the checked build
// turns any pin-protocol violation into a generation-stamp panic, and the
// dedicated unpinned-read twin lives in internal/core/lifecycle_test.go
// where the sealed tables are reachable.
func TestLifecycleStress(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := randomTensor(rng, []uint64{20, 16, 18}, 900)
	r := randomTensor(rng, []uint64{18, 14, 20}, 900)
	spec := Spec{CtrLeft: []int{2, 0}, CtrRight: []int{0, 2}}

	want, err := ref.Contract(l, r, spec)
	if err != nil {
		t.Fatal(err)
	}

	ls, err := Preshard(l, spec.CtrLeft)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Preshard(r, spec.CtrRight)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Drop()
	defer rs.Drop()

	workers, iters := 4, 40
	if testing.Short() {
		workers, iters = 3, 8
	}

	before := ShardCacheStats()
	done := make(chan struct{})
	var contenders, dropper sync.WaitGroup

	// The dropper: keeps dooming whatever shards the contenders cached.
	// Pinned in-flight readers must finish their runs unharmed; the next
	// run rebuilds.
	dropper.Add(1)
	go func() {
		defer dropper.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			ls.Drop()
			rs.Drop()
			time.Sleep(500 * time.Microsecond)
		}
	}()

	for g := 0; g < workers; g++ {
		contenders.Add(1)
		go func(g int) {
			defer contenders.Done()
			for i := 0; i < iters; i++ {
				budget := WithShardBudget(-1) // unlimited
				if (g+i)%2 == 0 {
					budget = WithShardBudget(1) // evict everything, every run
				}
				got, _, err := ContractPrepared(ls, rs, WithThreads(2), budget)
				if err != nil {
					t.Errorf("worker %d iter %d: %v", g, i, err)
					return
				}
				if !Equal(got, want) {
					t.Errorf("worker %d iter %d: result diverged from reference (%d nnz, want %d)",
						g, i, got.NNZ(), want.NNZ())
					return
				}
			}
		}(g)
	}

	contenders.Wait()
	close(done)
	dropper.Wait()

	// Churn must actually have happened — but which counter moved during the
	// storm depends on whether Drop or the budget squeeze won each race, so
	// force both deterministically now that the dropper is gone. A squeezed
	// run leaves its shards resident (they were pinned while the budget was
	// enforced); the second squeezed run's budget application evicts them.
	for i := 0; i < 2; i++ {
		got, _, err := ContractPrepared(ls, rs, WithThreads(2), WithShardBudget(1))
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want) {
			t.Fatalf("squeezed run %d diverged from reference", i)
		}
	}
	// An unlimited run leaves residents for Drop to doom.
	if _, _, err := ContractPrepared(ls, rs, WithThreads(2), WithShardBudget(-1)); err != nil {
		t.Fatal(err)
	}
	ls.Drop()
	rs.Drop()

	after := ShardCacheStats()
	if after.Evictions-before.Evictions <= 0 {
		t.Errorf("no evictions under a 1-byte budget (delta %d)", after.Evictions-before.Evictions)
	}
	if after.Drops-before.Drops <= 0 {
		t.Errorf("no drops despite Drop on resident shards (delta %d)", after.Drops-before.Drops)
	}

	// One final unlimited-budget run leaves the global budget in a state the
	// rest of the binary expects, and proves the operands survived the storm.
	got, _, err := ContractPrepared(ls, rs, WithThreads(2), WithShardBudget(-1))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatal("post-storm run diverged from reference")
	}
}
