package main

import (
	"path/filepath"
	"strings"
	"testing"

	"fastcc"
)

func TestGenerateUniformToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "u.tns")
	var stdout, stderr strings.Builder
	err := run([]string{"-kind", "uniform", "-dims", "20x30x10", "-nnz", "150", "-seed", "7", "-out", out}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := fastcc.LoadTNS(out)
	if err != nil {
		t.Fatal(err)
	}
	if tn.Order() != 3 || tn.NNZ() != 150 {
		t.Fatalf("got %v", tn)
	}
	if !strings.Contains(stderr.String(), "generated") {
		t.Fatal("missing summary on stderr")
	}
}

func TestGenerateFrosttToStdout(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-kind", "frostt", "-name", "uber", "-scale", "0.001"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := fastcc.ReadTNS(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tn.Order() != 4 || tn.NNZ() == 0 {
		t.Fatalf("got %v", tn)
	}
}

func TestGenerateDLPNO(t *testing.T) {
	for _, tensor := range []string{"ov", "oo", "vv"} {
		var stdout, stderr strings.Builder
		err := run([]string{"-kind", "dlpno", "-name", "caffeine", "-tensor", tensor, "-scale", "0.02"}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("%s: %v", tensor, err)
		}
		if _, err := fastcc.ReadTNS(strings.NewReader(stdout.String())); err != nil {
			t.Fatalf("%s output unparseable: %v", tensor, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "bogus"},
		{"-kind", "uniform"},                  // missing dims
		{"-kind", "uniform", "-dims", "axb"},  // bad dims
		{"-kind", "frostt", "-name", "bogus"}, // unknown tensor
		{"-kind", "dlpno", "-name", "bogus"},  // unknown molecule
		{"-kind", "dlpno", "-name", "guanine", "-tensor", "xx"},
	}
	for i, args := range cases {
		var stdout, stderr strings.Builder
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("case %d (%v): want error", i, args)
		}
	}
}
