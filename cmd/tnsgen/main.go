// Command tnsgen generates benchmark sparse tensors in FROSTT .tns format:
//
//	tnsgen -kind uniform -dims 1000x800x50 -nnz 100000 -out t.tns
//	tnsgen -kind frostt -name chicago -scale 0.01 -out chicago.tns
//	tnsgen -kind dlpno -name guanine -tensor vv -scale 0.25 -out te_vv.tns
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fastcc"
	"fastcc/internal/coo"
	"fastcc/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tnsgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tnsgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind   = fs.String("kind", "uniform", "generator: uniform, frostt or dlpno")
		name   = fs.String("name", "", "frostt tensor (nips/chicago/vast/uber) or molecule (guanine/caffeine)")
		tensor = fs.String("tensor", "ov", "dlpno tensor: ov, oo or vv")
		dims   = fs.String("dims", "", "uniform mode extents, e.g. 1000x800x50")
		nnz    = fs.Int("nnz", 10000, "uniform nonzero count")
		skew   = fs.Float64("skew", 1, "uniform coordinate skew (1 = uniform)")
		scale  = fs.Float64("scale", 1, "shrink factor for frostt/dlpno presets")
		seed   = fs.Uint64("seed", 42, "random seed")
		out    = fs.String("out", "", "output file (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var t *coo.Tensor
	var err error
	switch *kind {
	case "uniform":
		if *dims == "" {
			return fmt.Errorf("-dims is required for -kind uniform")
		}
		var ds []uint64
		for _, p := range strings.Split(*dims, "x") {
			d, perr := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
			if perr != nil {
				return fmt.Errorf("bad -dims %q: %v", *dims, perr)
			}
			ds = append(ds, d)
		}
		t, err = gen.Uniform(ds, *nnz, *seed, gen.Options{Skew: *skew})
	case "frostt":
		spec, ferr := gen.FrosttByName(*name)
		if ferr != nil {
			return ferr
		}
		t, err = spec.Scaled(*scale).Generate(*seed)
	case "dlpno":
		mol, merr := gen.MoleculeByName(*name)
		if merr != nil {
			return merr
		}
		m := mol.Scaled(*scale)
		switch *tensor {
		case "ov":
			t = m.TEov()
		case "oo":
			t = m.TEoo()
		case "vv":
			t = m.TEvv()
		default:
			return fmt.Errorf("unknown -tensor %q (want ov, oo or vv)", *tensor)
		}
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "generated %v\n", t)
	if *out == "" {
		return fastcc.WriteTNS(stdout, t)
	}
	return fastcc.SaveTNS(*out, t)
}
