// Command tnsinfo inspects a sparse tensor file and reports the statistics
// that drive FaSTCC's decisions: shape, density, per-mode slice
// distributions, HiCOO block clustering, and — given a candidate
// contraction — the probabilistic model's accumulator choice and tile size
// (paper Algorithm 7) on each platform profile.
//
// It also dumps shard-cache spill files (the disk tier's .fspl envelopes):
//
//	tnsinfo -in chicago.tns
//	tnsinfo -in chicago.tns -ctr 0 -platform desktop8
//	tnsinfo -spill cache/ab12cd-m1-t64-r0.fspl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fastcc"
	"fastcc/internal/coo"
	"fastcc/internal/hicoo"
	"fastcc/internal/model"
	"fastcc/internal/spill"
	"fastcc/internal/tnsbin"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tnsinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tnsinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "tensor file (.tns, .btns, optionally .gz)")
		ctr       = fs.String("ctr", "", "comma-separated modes of a candidate self-contraction")
		platform  = fs.String("platform", "auto", "model platform: auto, desktop8 or server64")
		blockBits = fs.Uint("block-bits", 7, "HiCOO block bits for the clustering report (0 to skip)")
		spillFile = fs.String("spill", "", "shard-cache spill file (.fspl) to dump instead of a tensor")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spillFile != "" {
		return dumpSpill(*spillFile, stdout)
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("-in or -spill is required")
	}
	t, err := fastcc.LoadTNS(*in)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "file:    %s\n", *in)
	fmt.Fprintf(stdout, "order:   %d\n", t.Order())
	fmt.Fprintf(stdout, "dims:    %v\n", t.Dims)
	fmt.Fprintf(stdout, "nnz:     %d\n", t.NNZ())
	fmt.Fprintf(stdout, "density: %.4g\n", t.Density())

	for m := 0; m < t.Order(); m++ {
		h, err := t.ModeHistogram(m)
		if err != nil {
			return err
		}
		nonempty := 0
		maxSlice := int64(0)
		for _, c := range h {
			if c > 0 {
				nonempty++
			}
			if c > maxSlice {
				maxSlice = c
			}
		}
		mean := 0.0
		if nonempty > 0 {
			mean = float64(t.NNZ()) / float64(nonempty)
		}
		fmt.Fprintf(stdout, "mode %d:  %d/%d nonempty slices, max slice nnz %d, mean %.1f\n",
			m, nonempty, len(h), maxSlice, mean)
	}

	if *blockBits > 0 && t.Order() > 0 {
		h, err := hicoo.FromCOO(t, *blockBits)
		if err != nil {
			fmt.Fprintf(stdout, "hicoo:   (skipped: %v)\n", err)
		} else {
			hb, cb := h.IndexBytes()
			minB, maxB, mean := h.BlockDensityStats()
			fmt.Fprintf(stdout, "hicoo:   %d blocks (B=%d), nnz/block min %d max %d mean %.1f, index bytes %d vs COO %d (%.1fx)\n",
				h.NumBlocks(), 1<<*blockBits, minB, maxB, mean, hb, cb, float64(cb)/float64(hb))
		}
	}

	if *ctr != "" {
		var modes []int
		for _, p := range strings.Split(*ctr, ",") {
			m, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("bad -ctr %q: %v", *ctr, err)
			}
			modes = append(modes, m)
		}
		var plat model.Platform
		switch *platform {
		case "auto":
			plat = model.Auto()
		case "desktop8":
			plat = model.Desktop8
		case "server64":
			plat = model.Server64
		default:
			return fmt.Errorf("unknown -platform %q", *platform)
		}
		spec := coo.Spec{CtrLeft: modes, CtrRight: modes}
		if err := spec.Validate(t, t); err != nil {
			return err
		}
		ext := coo.ExternalModes(t.Order(), modes)
		extDims := make([]uint64, 0, len(ext))
		for _, m := range ext {
			extDims = append(extDims, t.Dims[m])
		}
		ctrDims := make([]uint64, 0, len(modes))
		for _, m := range modes {
			ctrDims = append(ctrDims, t.Dims[m])
		}
		lSize, err := coo.LinearSize(extDims)
		if err != nil {
			return err
		}
		cSize, err := coo.LinearSize(ctrDims)
		if err != nil {
			return err
		}
		dec, err := model.Decide(model.Inputs{
			NNZL: int64(t.NNZ()), NNZR: int64(t.NNZ()),
			LDim: lSize, RDim: lSize, CDim: cSize,
		}, plat)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nself-contraction over modes %v on %s:\n", modes, plat.Name)
		fmt.Fprintf(stdout, "  pL = pR = %.4g, estimated output density %.4g\n", dec.PL, dec.PNonzero)
		fmt.Fprintf(stdout, "  E_nnz(T^2) = %.4g -> %s accumulator, tile %dx%d\n",
			dec.ENNZ, dec.Kind, dec.TileL, dec.TileR)
		fmt.Fprintf(stdout, "  expected output nnz ≈ %.4g (of %.4g positions)\n",
			dec.PNonzero*float64(lSize)*float64(lSize), float64(lSize)*float64(lSize))
	}
	return nil
}

// dumpSpill prints a spill file's envelope (version, generation stamp,
// size) and verifies the whole-file CRC-32 trailer, reporting corruption as
// the same typed causes the shard cache's fallback counters use.
func dumpSpill(path string, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h, err := spill.ParseHeader(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(stdout, "file:       %s\n", path)
	fmt.Fprintf(stdout, "format:     fspl v%d (shard-cache spill envelope)\n", h.Version)
	fmt.Fprintf(stdout, "generation: %d\n", h.Gen)
	fmt.Fprintf(stdout, "size:       %d bytes (%d body, 4 checksum trailer)\n",
		h.Size, int64(len(data))-spill.EnvelopeBytes)
	if _, err := tnsbin.NewSectionReader(data); err != nil {
		fmt.Fprintf(stdout, "checksum:   BAD (%v)\n", err)
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(stdout, "checksum:   ok\n")
	return nil
}
