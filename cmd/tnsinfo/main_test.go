package main

import (
	"path/filepath"
	"strings"
	"testing"

	"fastcc"
)

func sample(t *testing.T) string {
	t.Helper()
	tn := fastcc.NewTensor([]uint64{32, 16, 8}, 4)
	tn.Append([]uint64{0, 0, 0}, 1)
	tn.Append([]uint64{1, 1, 1}, 2)
	tn.Append([]uint64{31, 15, 7}, 3)
	tn.Append([]uint64{2, 1, 0}, 4)
	path := filepath.Join(t.TempDir(), "s.tns")
	if err := fastcc.SaveTNS(path, tn); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInfoBasic(t *testing.T) {
	path := sample(t)
	var stdout, stderr strings.Builder
	if err := run([]string{"-in", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"order:   3", "nnz:     4", "mode 0:", "mode 2:", "hicoo:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestInfoWithContraction(t *testing.T) {
	path := sample(t)
	var stdout, stderr strings.Builder
	if err := run([]string{"-in", path, "-ctr", "2", "-platform", "desktop8"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"self-contraction over modes [2]", "accumulator", "E_nnz"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestInfoErrors(t *testing.T) {
	path := sample(t)
	cases := [][]string{
		{},
		{"-in", "/definitely/missing.tns"},
		{"-in", path, "-ctr", "x"},
		{"-in", path, "-ctr", "9"},
		{"-in", path, "-ctr", "0", "-platform", "bogus"},
	}
	for i, args := range cases {
		var stdout, stderr strings.Builder
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
