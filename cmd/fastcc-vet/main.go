// Command fastcc-vet runs FaSTCC's custom static analyzers over Go package
// patterns, in the manner of go vet:
//
//	fastcc-vet ./...                    # all analyzers, whole repo
//	fastcc-vet -c atomicmix,linovf ./internal/scheduler
//	fastcc-vet -list                    # describe the analyzers
//
// The suite checks concurrency and indexing invariants the compiler cannot:
// mixed atomic/plain access (atomicmix), unchecked dimension products
// (linovf), allocations in //fastcc:hotpath kernels (hotalloc), WaitGroup
// fork/join mistakes (wgmisuse) and discarded finalizer errors (errdiscard).
// Findings are suppressed per line with //fastcc:allow <name> -- reason.
//
// Exit status: 0 when clean, 1 on findings, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fastcc/tools/analysis/atomicmix"
	"fastcc/tools/analysis/errdiscard"
	"fastcc/tools/analysis/framework"
	"fastcc/tools/analysis/hotalloc"
	"fastcc/tools/analysis/linovf"
	"fastcc/tools/analysis/wgmisuse"
)

// All is the registered analyzer suite, in reporting order.
var All = []*framework.Analyzer{
	atomicmix.Analyzer,
	errdiscard.Analyzer,
	hotalloc.Analyzer,
	linovf.Analyzer,
	wgmisuse.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fastcc-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list the analyzers and exit")
		checks  = fs.String("c", "", "comma-separated analyzer names to run (default: all)")
		workDir = fs.String("dir", ".", "directory to resolve package patterns from")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range All {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := All
	if *checks != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "fastcc-vet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := framework.Load(*workDir, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fastcc-vet:", err)
		return 2
	}
	diags, fset, err := framework.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "fastcc-vet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, framework.Format(fset, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fastcc-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
