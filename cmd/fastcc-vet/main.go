// Command fastcc-vet runs FaSTCC's custom static analyzers over Go package
// patterns, in the manner of go vet:
//
//	fastcc-vet ./...                    # all analyzers, whole repo
//	fastcc-vet -c atomicmix,linovf ./internal/scheduler
//	fastcc-vet -list                    # describe the analyzers
//
// The suite checks concurrency, indexing and memory-lifetime invariants the
// compiler cannot: mixed atomic/plain access (atomicmix), unchecked
// dimension products (linovf), allocations in //fastcc:hotpath kernels
// (hotalloc), WaitGroup fork/join mistakes (wgmisuse), discarded finalizer
// errors (errdiscard), pool-obtained memory escaping its recycle point
// (poolescape), narrow-integer span arithmetic (spanarith), writes to
// sealed structures outside their constructors (sealedmut) and batched
// probe/scatter length contracts at provable call sites (batchlen). Three
// whole-program passes reason over a shared call graph: interprocedural
// pool escape (poolescapex), mutex acquisition order against annotated
// //fastcc:lockrank ranks (lockorder), and pin/guard/pool bracket balance on
// every control-flow path (pinbracket). Findings are suppressed per line
// with //fastcc:allow <name> -- reason; deliberate ownership transfers carry
// //fastcc:owned instead.
//
// Exit status: 0 when clean, 1 on findings, 2 on usage or load errors —
// including a malformed suite registration: a nil, unnamed or
// duplicate-named analyzer, or one that does not set exactly one of Run and
// RunProgram, aborts the run instead of being skipped silently.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fastcc/tools/analysis/atomicmix"
	"fastcc/tools/analysis/batchlen"
	"fastcc/tools/analysis/errdiscard"
	"fastcc/tools/analysis/framework"
	"fastcc/tools/analysis/hotalloc"
	"fastcc/tools/analysis/linovf"
	"fastcc/tools/analysis/lockorder"
	"fastcc/tools/analysis/pinbracket"
	"fastcc/tools/analysis/poolescape"
	"fastcc/tools/analysis/poolescapex"
	"fastcc/tools/analysis/sealedmut"
	"fastcc/tools/analysis/spanarith"
	"fastcc/tools/analysis/wgmisuse"
)

// All is the registered analyzer suite, in reporting order.
var All = []*framework.Analyzer{
	atomicmix.Analyzer,
	batchlen.Analyzer,
	errdiscard.Analyzer,
	hotalloc.Analyzer,
	linovf.Analyzer,
	lockorder.Analyzer,
	pinbracket.Analyzer,
	poolescape.Analyzer,
	poolescapex.Analyzer,
	sealedmut.Analyzer,
	spanarith.Analyzer,
	wgmisuse.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// validateSuite rejects a malformed registration before any analysis runs.
// Without this gate a nil entry panicked deep in the driver and an unnamed
// or duplicate-named pass was silently unreachable from -c and unreadable
// in findings — a bad registration could effectively disable a gate.
func validateSuite(all []*framework.Analyzer) error {
	seen := make(map[string]bool, len(all))
	for i, a := range all {
		switch {
		case a == nil:
			return fmt.Errorf("analyzer %d is nil", i)
		case a.Name == "":
			return fmt.Errorf("analyzer %d has no name", i)
		case a.Run == nil && a.RunProgram == nil:
			return fmt.Errorf("analyzer %q has neither Run nor RunProgram", a.Name)
		case a.Run != nil && a.RunProgram != nil:
			return fmt.Errorf("analyzer %q sets both Run and RunProgram; exactly one must be set", a.Name)
		case seen[a.Name]:
			return fmt.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	if err := validateSuite(All); err != nil {
		fmt.Fprintln(stderr, "fastcc-vet: invalid analyzer suite:", err)
		return 2
	}
	fs := flag.NewFlagSet("fastcc-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list the analyzers and exit")
		checks  = fs.String("c", "", "comma-separated analyzer names to run (default: all)")
		workDir = fs.String("dir", ".", "directory to resolve package patterns from")
		stats   = fs.Bool("stats", false, "print call-graph devirtualization statistics (opaque-site count) after analysis")
		opaque  = fs.Bool("opaque", false, "list every opaque (unresolved indirect) call site; implies -stats")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range All {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := All
	if *checks != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "fastcc-vet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := framework.Load(*workDir, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fastcc-vet:", err)
		return 2
	}
	prog := framework.NewProgram(pkgs)
	diags, fset, err := framework.RunAnalyzersOn(prog, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "fastcc-vet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, framework.Format(fset, d))
	}
	if *opaque {
		*stats = true
		for _, node := range prog.CallGraph().Nodes {
			for _, site := range node.Calls {
				if site.Opaque && site.Kind != framework.CallExternal {
					pos := prog.Fset.Position(site.Call.Pos())
					fmt.Fprintf(stdout, "opaque: %s:%d:%d in %s\n", pos.Filename, pos.Line, pos.Column, node.Name())
				}
			}
		}
	}
	if *stats {
		// The devirtualization ledger: how much of the call graph the
		// whole-program passes actually see. "opaque call sites" is the
		// tracked soundness gap — CI guards it against regression
		// (tools/analysis/opaque_golden.txt).
		s := prog.CallStats()
		fmt.Fprintf(stdout, "call sites: %d\n", s.Sites)
		fmt.Fprintf(stdout, "  direct: %d\n", s.Direct)
		fmt.Fprintf(stdout, "  external (no source): %d\n", s.External)
		fmt.Fprintf(stdout, "  devirtualized interface calls: %d\n", s.DevirtIface)
		fmt.Fprintf(stdout, "  devirtualized func-value calls: %d\n", s.DevirtFunc)
		fmt.Fprintf(stdout, "  dynamic (annotated //fastcc:dynamic): %d\n", s.Dynamic)
		fmt.Fprintf(stdout, "opaque call sites: %d\n", s.Opaque)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fastcc-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
