package main

import (
	"bytes"
	"strings"
	"testing"

	"fastcc/tools/analysis/framework"
)

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, a := range All {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-c", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("run(-c nosuch) = %d, want 2", code)
	}
}

// TestRepoIsClean is the suite's own acceptance gate: the multichecker must
// exit 0 over the entire module. A regression that reintroduces a finding
// (or an analyzer change that false-positives on existing code) fails here.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export over the whole module")
	}
	root, err := framework.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", root, "./..."}, &out, &errOut)
	if code != 0 {
		t.Errorf("fastcc-vet ./... = exit %d, want 0\nfindings:\n%s%s", code, out.String(), errOut.String())
	}
}
