package main

import (
	"bytes"
	"strings"
	"testing"

	"fastcc/tools/analysis/framework"
)

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, a := range All {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}

func TestValidateSuite(t *testing.T) {
	if err := validateSuite(All); err != nil {
		t.Fatalf("registered suite invalid: %v", err)
	}
	ok := &framework.Analyzer{Name: "ok", Run: func(*framework.Pass) error { return nil }}
	wp := func(*framework.ProgramPass) error { return nil }
	cases := []struct {
		name string
		all  []*framework.Analyzer
	}{
		{"nil entry", []*framework.Analyzer{ok, nil}},
		{"unnamed", []*framework.Analyzer{{Run: ok.Run}}},
		{"runless", []*framework.Analyzer{{Name: "broken"}}},
		{"both modes", []*framework.Analyzer{{Name: "both", Run: ok.Run, RunProgram: wp}}},
		{"duplicate", []*framework.Analyzer{ok, {Name: "ok", Run: ok.Run}}},
		{"duplicate whole-program", []*framework.Analyzer{ok, {Name: "ok", RunProgram: wp}}},
	}
	for _, tc := range cases {
		if err := validateSuite(tc.all); err == nil {
			t.Errorf("%s: validateSuite accepted a malformed suite", tc.name)
		}
	}
}

// TestBrokenSuiteExitsNonZero pins the driver behavior: a bad registration
// must abort with exit 2, not skip the pass.
func TestBrokenSuiteExitsNonZero(t *testing.T) {
	saved := All
	defer func() { All = saved }()
	All = append([]*framework.Analyzer{nil}, saved...)
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 2 {
		t.Fatalf("run with nil analyzer = %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "invalid analyzer suite") {
		t.Errorf("stderr missing suite diagnosis: %s", errOut.String())
	}
}

// TestMisregisteredWholeProgramPassExits2 pins the driver contract for the
// whole-program passes: an analyzer that sets both Run and RunProgram is
// ambiguous — the driver cannot know whether to run it per package or once
// over the call graph — and must abort the run with exit 2 before any
// package loads, never pick one mode silently.
func TestMisregisteredWholeProgramPassExits2(t *testing.T) {
	saved := All
	defer func() { All = saved }()
	All = append(append([]*framework.Analyzer(nil), saved...), &framework.Analyzer{
		Name:       "bothways",
		Run:        func(*framework.Pass) error { return nil },
		RunProgram: func(*framework.ProgramPass) error { return nil },
	})
	var out, errOut bytes.Buffer
	if code := run([]string{"./..."}, &out, &errOut); code != 2 {
		t.Fatalf("run with both-modes analyzer = %d, want 2 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "exactly one must be set") {
		t.Errorf("stderr missing the both-modes diagnosis: %s", errOut.String())
	}
}

func TestUnknownAnalyzerRejected(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-c", "nosuch", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("run(-c nosuch) = %d, want 2", code)
	}
}

// TestRepoIsClean is the suite's own acceptance gate: the multichecker must
// exit 0 over the entire module. A regression that reintroduces a finding
// (or an analyzer change that false-positives on existing code) fails here.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export over the whole module")
	}
	root, err := framework.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", root, "./..."}, &out, &errOut)
	if code != 0 {
		t.Errorf("fastcc-vet ./... = exit %d, want 0\nfindings:\n%s%s", code, out.String(), errOut.String())
	}
}
