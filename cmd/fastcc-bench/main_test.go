package main

import (
	"strings"
	"testing"
)

func TestRunTable2(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-exp", "table2", "-scale-frostt", "0.001"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nips", "chicago", "vast", "uber"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("missing %q in output:\n%s", want, stdout.String())
		}
	}
}

func TestRunTable1WithPlatforms(t *testing.T) {
	for _, p := range []string{"auto", "desktop8", "server64"} {
		var stdout, stderr strings.Builder
		if err := run([]string{"-exp", "table1", "-platform", p}, &stdout, &stderr); err != nil {
			t.Fatalf("platform %s: %v", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "bogus"},
		{"-platform", "bogus"},
		{"-definitely-not-a-flag"},
	}
	for i, args := range cases {
		var stdout, stderr strings.Builder
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("case %d (%v): want error", i, args)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"-exp", "table2", "-scale-frostt", "0.001", "-format", "csv"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "tensor,paper dims,paper nnz") {
		t.Fatalf("csv header missing:\n%s", stdout.String())
	}
	if err := run([]string{"-format", "bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("bad format accepted")
	}
}
