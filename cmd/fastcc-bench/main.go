// Command fastcc-bench regenerates the paper's evaluation tables and
// figures on synthetic workloads:
//
//	fastcc-bench -exp table3                  # model choice + timings
//	fastcc-bench -exp fig2 -suite frostt      # speedups over Sparta
//	fastcc-bench -exp all -scale-frostt 0.05  # everything, bigger inputs
//
// Available experiments: table1 table2 table3 fig2 fig3 fig4 fig5 ablate,
// or "all". Scales of 1.0 approximate paper-sized inputs (hours of compute
// and tens of GB); the defaults finish on a laptop in minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fastcc/internal/experiments"
	"fastcc/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fastcc-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fastcc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := experiments.Default()
	var (
		exp         = fs.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), ", ")+" or all")
		suite       = fs.String("suite", "all", "benchmark suite for fig2/fig4: frostt, qc or all")
		scaleFrostt = fs.Float64("scale-frostt", def.ScaleFROSTT, "FROSTT workload scale (1 = paper size)")
		scaleQC     = fs.Float64("scale-qc", def.ScaleQC, "quantum-chemistry workload scale")
		threads     = fs.Int("threads", 0, "worker threads (0 = all cores)")
		platform    = fs.String("platform", "auto", "model platform: auto, desktop8 or server64")
		seed        = fs.Uint64("seed", def.Seed, "workload seed")
		repeats     = fs.Int("repeats", def.Repeats, "timing repeats (min reported)")
		verify      = fs.Bool("verify", false, "cross-check engine outputs (slower)")
		format      = fs.String("format", "table", "table rendering: table or csv")
		pprofDir    = fs.String("pprof-dir", "", "directory for CPU profiles from profile-aware experiments (hotpath)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Default()
	cfg.Out = stdout
	cfg.ScaleFROSTT = *scaleFrostt
	cfg.ScaleQC = *scaleQC
	cfg.Threads = *threads
	cfg.Seed = *seed
	cfg.Repeats = *repeats
	cfg.Verify = *verify
	cfg.ProfileDir = *pprofDir
	switch *format {
	case "table", "csv":
		cfg.Format = *format
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}
	switch *platform {
	case "auto":
		cfg.Platform = model.Auto()
	case "desktop8":
		cfg.Platform = model.Desktop8
	case "server64":
		cfg.Platform = model.Server64
	default:
		return fmt.Errorf("unknown -platform %q", *platform)
	}
	return experiments.Run(cfg, *exp, *suite)
}
