// Command fastcc-client talks to a running fastcc-serve daemon:
//
//	fastcc-client -server http://127.0.0.1:8080 -tenant alice upload A.tns
//	fastcc-client ... contract -left <hash> -right <hash> -expr "ik,kl->il"
//	fastcc-client ... fetch -id <result-id> -out O.tns
//	fastcc-client ... stats
//	fastcc-client ... selftest
//
// selftest generates two random tensors, contracts them both remotely and
// locally, and verifies the downloaded result is bit-identical to the local
// one — the scripted round-trip make serve-smoke runs against a freshly
// started daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"fastcc"
	"fastcc/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fastcc-client:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fastcc-client", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		base    = fs.String("server", "http://127.0.0.1:8080", "fastcc-serve base URL")
		tenant  = fs.String("tenant", "default", "tenant ID sent on every request")
		timeout = fs.Duration("timeout", 60*time.Second, "overall request deadline")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: fastcc-client [flags] <upload|contract|fetch|stats|selftest> [subcommand flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("missing subcommand")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := server.NewClient(*base, *tenant, nil)
	sub, rest := fs.Arg(0), fs.Args()[1:]
	switch sub {
	case "upload":
		return cmdUpload(ctx, c, rest, stdout, stderr)
	case "contract":
		return cmdContract(ctx, c, rest, stdout, stderr)
	case "fetch":
		return cmdFetch(ctx, c, rest, stdout, stderr)
	case "stats":
		return cmdStats(ctx, c, stdout)
	case "selftest":
		return cmdSelftest(ctx, c, rest, stdout, stderr)
	default:
		fs.Usage()
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}

func cmdUpload(ctx context.Context, c *server.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("upload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("upload takes exactly one .tns file")
	}
	t, err := fastcc.LoadTNS(fs.Arg(0))
	if err != nil {
		return err
	}
	hash, err := c.Upload(ctx, t)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, hash)
	return nil
}

func cmdContract(ctx context.Context, c *server.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("contract", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		left  = fs.String("left", "", "left operand content hash (required)")
		right = fs.String("right", "", "right operand content hash (required)")
		expr  = fs.String("expr", "", "einsum expression, e.g. \"ik,kl->il\" (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *left == "" || *right == "" || *expr == "" {
		fs.Usage()
		return fmt.Errorf("-left, -right and -expr are required")
	}
	resp, err := c.Contract(ctx, &server.ContractRequest{Left: *left, Right: *right, Expr: *expr})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s nnz=%d total=%s shard_reused=%v\n",
		resp.ResultID, resp.OutputNNZ, time.Duration(resp.TotalNS), resp.ShardReused)
	return nil
}

func cmdFetch(ctx context.Context, c *server.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fetch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id  = fs.String("id", "", "result ID from contract (required)")
		out = fs.String("out", "", "output .tns path (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		fs.Usage()
		return fmt.Errorf("-id is required")
	}
	t, err := c.Fetch(ctx, *id)
	if err != nil {
		return err
	}
	if *out == "" {
		return fastcc.WriteTNS(stdout, t)
	}
	return fastcc.SaveTNS(*out, t)
}

func cmdStats(ctx context.Context, c *server.Client, stdout io.Writer) error {
	st, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cache: %s\n", st.Cache.String())
	fmt.Fprintf(stdout, "admission: in_flight=%d queued=%d\n", st.InFlight, st.Queued)
	fmt.Fprintf(stdout, "registry: operands=%d bytes=%d results=%d uploaded_bytes=%d\n",
		st.Operands, st.OperandBytes, st.Results, st.UploadedBytes)
	for _, ts := range st.Tenants {
		fmt.Fprintf(stdout, "%s\n", ts.String())
	}
	return nil
}

// cmdSelftest runs the scripted round-trip: two random tensors, remote
// contraction, local contraction, bit-identical comparison, API cleanup.
func cmdSelftest(ctx context.Context, c *server.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("selftest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed    = fs.Int64("seed", 42, "random seed for the generated operands")
		threads = fs.Int("threads", 2, "threads for the local reference contraction (match the server's -threads)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	l := canonical(randomTensor(rng, []uint64{40, 30}, 400))
	r := canonical(randomTensor(rng, []uint64{30, 25}, 350))
	want, _, err := fastcc.Contract(l, r,
		fastcc.Spec{CtrLeft: []int{1}, CtrRight: []int{0}}, fastcc.WithThreads(*threads))
	if err != nil {
		return fmt.Errorf("local contraction: %w", err)
	}

	lh, err := c.Upload(ctx, l)
	if err != nil {
		return fmt.Errorf("upload left: %w", err)
	}
	rh, err := c.Upload(ctx, r)
	if err != nil {
		return fmt.Errorf("upload right: %w", err)
	}
	fmt.Fprintf(stdout, "uploaded %s %s\n", lh[:12], rh[:12])

	for run := 0; run < 2; run++ {
		resp, err := c.Contract(ctx, &server.ContractRequest{Left: lh, Right: rh, Expr: "ik,kl->il"})
		if err != nil {
			return fmt.Errorf("remote contraction: %w", err)
		}
		got, err := c.Fetch(ctx, resp.ResultID)
		if err != nil {
			return fmt.Errorf("fetch: %w", err)
		}
		if !fastcc.Equal(got, want) {
			return fmt.Errorf("run %d: remote result differs from local contraction", run)
		}
		fmt.Fprintf(stdout, "run %d: %d nonzeros match local contraction (shard_reused=%v)\n",
			run, resp.OutputNNZ, resp.ShardReused)
		if err := c.DeleteResult(ctx, resp.ResultID); err != nil {
			return fmt.Errorf("delete result: %w", err)
		}
	}

	if err := c.Release(ctx, lh); err != nil {
		return fmt.Errorf("release left: %w", err)
	}
	if err := c.Release(ctx, rh); err != nil {
		return fmt.Errorf("release right: %w", err)
	}
	fmt.Fprintln(stdout, "selftest ok")
	return nil
}

// randomTensor generates unique-coordinate random tensors (duplicates would
// make the canonical form sum values and break bit-identical comparison).
func randomTensor(rng *rand.Rand, dims []uint64, nnz int) *fastcc.Tensor {
	t := fastcc.NewTensor(dims, nnz)
	coords := make([]uint64, len(dims))
	seen := make(map[uint64]bool, nnz)
	for i := 0; i < nnz; i++ {
		lin := uint64(0)
		for m, d := range dims {
			coords[m] = rng.Uint64() % d
			lin = lin*d + coords[m]
		}
		if seen[lin] {
			continue
		}
		seen[lin] = true
		t.Append(coords, rng.NormFloat64())
	}
	return t
}

// canonical round-trips a tensor through BTNS so the local reference
// contraction sees exactly the operand bytes the server stores.
func canonical(t *fastcc.Tensor) *fastcc.Tensor {
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(fastcc.WriteBTNS(pw, t)) }()
	c, err := fastcc.ReadBTNS(pr)
	if err != nil {
		panic(err)
	}
	return c
}
