package main

import (
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"fastcc"
	"fastcc/internal/server"
)

// newBackend serves the real server package over httptest, with the leak
// check asserted at cleanup — the client CLI is exercised against exactly
// what fastcc-serve runs.
func newBackend(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{Threads: 2})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("backend close: %v", err)
		}
	})
	return hs.URL
}

func TestClientSelftest(t *testing.T) {
	url := newBackend(t)
	var stdout, stderr strings.Builder
	err := run([]string{"-server", url, "-tenant", "cli-selftest", "selftest", "-threads", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("selftest: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "selftest ok") {
		t.Fatalf("selftest did not report ok:\n%s", out)
	}
	if !strings.Contains(out, "shard_reused=true") {
		t.Fatalf("warm selftest run did not reuse shards:\n%s", out)
	}
}

func TestClientUploadContractFetch(t *testing.T) {
	url := newBackend(t)
	dir := t.TempDir()

	// Small exact-arithmetic operands: 2×2 matrices of small integers.
	l := fastcc.NewTensor([]uint64{2, 2}, 4)
	l.Append([]uint64{0, 0}, 2)
	l.Append([]uint64{1, 1}, 3)
	r := fastcc.NewTensor([]uint64{2, 2}, 4)
	r.Append([]uint64{0, 1}, 4)
	r.Append([]uint64{1, 0}, 5)
	lp := filepath.Join(dir, "l.tns")
	rp := filepath.Join(dir, "r.tns")
	if err := fastcc.SaveTNS(lp, l); err != nil {
		t.Fatal(err)
	}
	if err := fastcc.SaveTNS(rp, r); err != nil {
		t.Fatal(err)
	}

	upload := func(path string) string {
		var stdout, stderr strings.Builder
		if err := run([]string{"-server", url, "-tenant", "cli-files", "upload", path}, &stdout, &stderr); err != nil {
			t.Fatalf("upload %s: %v\nstderr: %s", path, err, stderr.String())
		}
		return strings.TrimSpace(stdout.String())
	}
	lh, rh := upload(lp), upload(rp)

	var stdout, stderr strings.Builder
	err := run([]string{"-server", url, "-tenant", "cli-files",
		"contract", "-left", lh, "-right", rh, "-expr", "ik,kl->il"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("contract: %v\nstderr: %s", err, stderr.String())
	}
	resultID := strings.Fields(stdout.String())[0]

	outPath := filepath.Join(dir, "o.tns")
	stdout.Reset()
	err = run([]string{"-server", url, "-tenant", "cli-files",
		"fetch", "-id", resultID, "-out", outPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("fetch: %v\nstderr: %s", err, stderr.String())
	}
	got, err := fastcc.LoadTNS(outPath)
	if err != nil {
		t.Fatal(err)
	}
	// [[2,0],[0,3]] × [[0,4],[5,0]] = [[0,8],[15,0]].
	want := fastcc.NewTensor([]uint64{2, 2}, 2)
	want.Append([]uint64{0, 1}, 8)
	want.Append([]uint64{1, 0}, 15)
	if !fastcc.Equal(got, want) {
		t.Fatal("fetched result is not the expected product")
	}

	stdout.Reset()
	if err := run([]string{"-server", url, "-tenant", "cli-files", "stats"}, &stdout, &stderr); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(stdout.String(), "operands=2") {
		t.Fatalf("stats output missing registry state:\n%s", stdout.String())
	}
}

func TestClientUsageErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{}, &stdout, &stderr); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"frobnicate"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"contract"}, &stdout, &stderr); err == nil {
		t.Fatal("contract without flags accepted")
	}
	if err := run([]string{"fetch"}, &stdout, &stderr); err == nil {
		t.Fatal("fetch without -id accepted")
	}
}
