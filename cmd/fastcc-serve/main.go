// Command fastcc-serve runs the multi-tenant contraction daemon: clients
// upload tensors (content-addressed by the SHA-256 of their canonical BTNS
// encoding), run contractions over them by hash, and download results —
// with per-tenant shard-cache accounting and bounded request admission
// underneath. See README.md "Running the server" for the HTTP surface.
//
//	fastcc-serve -addr 127.0.0.1:8080 -cache-budget 268435456 \
//	    -tenant-quota 67108864 -inflight 4 -queue 64
//
// On SIGINT/SIGTERM the daemon stops accepting requests, drains in-flight
// contractions, drops all server state and exits 0 only if the shard-cache
// and output-chunk leak gauges returned to their startup baseline — so a
// clean shutdown doubles as a leak check (make serve-smoke relies on it).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastcc/internal/server"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, stop); err != nil {
		fmt.Fprintln(os.Stderr, "fastcc-serve:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing, testable with an injected stop
// channel and capture writers.
func run(args []string, stdout, stderr io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("fastcc-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		addrFile     = fs.String("addr-file", "", "write the bound address to this file once listening")
		inflight     = fs.Int("inflight", 2, "max concurrent contractions")
		queue        = fs.Int("queue", 16, "max queued contractions behind the in-flight bound (-1 = none)")
		cacheBudget  = fs.Int64("cache-budget", 0, "shard-cache budget in bytes (0 = platform default, -1 = unbounded)")
		tenantQuota  = fs.Int64("tenant-quota", 0, "per-tenant shard-cache quota in bytes (0 = none)")
		uploadQuota  = fs.Int64("upload-quota", 0, "per-tenant registry quota in estimated operand bytes (0 = none)")
		threads      = fs.Int("threads", 0, "worker threads per contraction (0 = all cores)")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request contraction deadline")
		spillDir     = fs.String("spill-dir", "", "spill directory for the shard cache's disk tier (empty = disabled)")
		spillBudget  = fs.Int64("spill-budget", 0, "spill directory byte budget (0 = unbounded)")
		spillPersist = fs.Bool("spill-persist", false, "keep spill files across restarts so the next daemon adopts them")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv, err := server.New(server.Config{
		Threads:      *threads,
		CacheBudget:  *cacheBudget,
		TenantQuota:  *tenantQuota,
		UploadQuota:  *uploadQuota,
		Inflight:     *inflight,
		Queue:        *queue,
		Timeout:      *timeout,
		SpillDir:     *spillDir,
		SpillBudget:  *spillBudget,
		SpillPersist: *spillPersist,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Written atomically-enough (tmp + rename) so a watcher polling for
		// the file never reads a partial address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			_ = ln.Close()
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			_ = ln.Close()
			return err
		}
	}
	fmt.Fprintf(stdout, "fastcc-serve listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case sig := <-stop:
		fmt.Fprintf(stdout, "fastcc-serve: %v, shutting down\n", sig)
	case err := <-serveErr:
		_ = srv.Close()
		return err
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "fastcc-serve: clean shutdown, leak gauges at baseline")
	return nil
}
