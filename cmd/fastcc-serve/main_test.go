package main

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fastcc/internal/server"
)

// startDaemon runs the daemon's run() on a free port with an addr-file and
// returns the bound base URL plus a shutdown function that signals stop and
// waits for a clean exit.
func startDaemon(t *testing.T, extraArgs ...string) (baseURL string, stdout *strings.Builder, shutdown func() error) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	stop := make(chan os.Signal, 1)
	stdout = &strings.Builder{}
	var stderr strings.Builder
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extraArgs...)
	go func() { done <- run(args, stdout, &stderr, stop) }()

	deadline := time.Now().Add(5 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote its addr file; stderr: %s", stderr.String())
		}
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(b))
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return "http://" + addr, stdout, func() error {
		stop <- syscall.SIGTERM
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit after SIGTERM")
			return nil
		}
	}
}

func TestServeRoundTripAndCleanShutdown(t *testing.T) {
	baseURL, stdout, shutdown := startDaemon(t, "-threads", "2", "-inflight", "2")

	// The daemon is healthy and serves the API end to end.
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	c := server.NewClient(baseURL, "serve-test", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("stats over the wire: %v", err)
	}

	// SIGTERM: drains, leak-checks, exits clean.
	if err := shutdown(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
	if !strings.Contains(stdout.String(), "clean shutdown") {
		t.Fatalf("daemon did not report a clean shutdown; stdout: %s", stdout.String())
	}
}

func TestServeFlagErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	stop := make(chan os.Signal)
	if err := run([]string{"-no-such-flag"}, &stdout, &stderr, stop); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"positional"}, &stdout, &stderr, stop); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-addr", "256.256.256.256:99999"}, &stdout, &stderr, stop); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
