// Command fastcc contracts two sparse tensors stored in FROSTT .tns files
// and writes the result as .tns:
//
//	fastcc -left A.tns -right B.tns -ctr-left 2 -ctr-right 0 -out O.tns
//
// The contraction sums mode ctr-left[k] of the left tensor against mode
// ctr-right[k] of the right tensor; the output modes are the left tensor's
// remaining modes followed by the right tensor's. Pass the same file to
// -left and -right for a self-contraction.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fastcc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fastcc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fastcc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		leftPath  = fs.String("left", "", "left operand .tns file (required)")
		rightPath = fs.String("right", "", "right operand .tns file (default: same as -left)")
		outPath   = fs.String("out", "", "output .tns file (default: stdout)")
		ctrLeft   = fs.String("ctr-left", "", "comma-separated contracted modes of the left tensor (required)")
		ctrRight  = fs.String("ctr-right", "", "contracted modes of the right tensor (default: same as -ctr-left)")
		threads   = fs.Int("threads", 0, "worker threads (0 = all cores)")
		tile      = fs.Uint64("tile", 0, "tile size override (0 = model-chosen)")
		accum     = fs.String("accum", "auto", "accumulator: auto, dense or sparse")
		platform  = fs.String("platform", "auto", "platform profile: auto, desktop8 or server64")
		showStats = fs.Bool("stats", false, "print run statistics to stderr")
		metrics   = fs.Bool("metrics", false, "collect and print data-access counters")
		verify    = fs.Int("verify", 0, "spot-check N sampled output elements by direct recomputation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *leftPath == "" || *ctrLeft == "" {
		fs.Usage()
		return fmt.Errorf("-left and -ctr-left are required")
	}

	left, err := fastcc.LoadTNS(*leftPath)
	if err != nil {
		return fmt.Errorf("loading left operand: %w", err)
	}
	right := left
	if *rightPath != "" && *rightPath != *leftPath {
		if right, err = fastcc.LoadTNS(*rightPath); err != nil {
			return fmt.Errorf("loading right operand: %w", err)
		}
	}

	modesL, err := parseModes(*ctrLeft)
	if err != nil {
		return err
	}
	modesR := modesL
	if *ctrRight != "" {
		if modesR, err = parseModes(*ctrRight); err != nil {
			return err
		}
	}

	opts := []fastcc.Option{fastcc.WithThreads(*threads)}
	if *tile != 0 {
		opts = append(opts, fastcc.WithTileSize(*tile, *tile))
	}
	switch *accum {
	case "auto":
	case "dense":
		opts = append(opts, fastcc.WithAccumulator(fastcc.AccumDense))
	case "sparse":
		opts = append(opts, fastcc.WithAccumulator(fastcc.AccumSparse))
	default:
		return fmt.Errorf("unknown -accum %q", *accum)
	}
	switch *platform {
	case "auto":
		opts = append(opts, fastcc.WithPlatform(fastcc.AutoPlatform()))
	case "desktop8":
		opts = append(opts, fastcc.WithPlatform(fastcc.Desktop8))
	case "server64":
		opts = append(opts, fastcc.WithPlatform(fastcc.Server64))
	default:
		return fmt.Errorf("unknown -platform %q", *platform)
	}
	if *metrics {
		opts = append(opts, fastcc.WithMetrics())
	}

	out, stats, err := fastcc.Contract(left, right,
		fastcc.Spec{CtrLeft: modesL, CtrRight: modesR}, opts...)
	if err != nil {
		return err
	}

	if *showStats || *metrics {
		reuse := "none"
		switch {
		case stats.ShardReused:
			reuse = "both"
		case stats.ShardReusedL:
			reuse = "left"
		case stats.ShardReusedR:
			reuse = "right"
		}
		fmt.Fprintf(stderr, "accumulator=%s tile=%dx%d grid=%dx%d tasks=%d threads=%d shard_reuse=%s\n",
			stats.Decision.Kind, stats.TileL, stats.TileR, stats.NL, stats.NR, stats.Tasks, stats.Threads, reuse)
		fmt.Fprintf(stderr, "output nnz=%d total=%v (linearize=%v build=%v contract=%v concat=%v delinearize=%v)\n",
			stats.OutputNNZ, stats.Total, stats.Linearize, stats.Build, stats.Contract, stats.Concat, stats.Delinearize)
		if *metrics {
			fmt.Fprintf(stderr, "counters: %v\n", stats.Counters)
		}
	}

	if *verify > 0 {
		spec := fastcc.Spec{CtrLeft: modesL, CtrRight: modesR}
		if err := fastcc.VerifySample(left, right, spec, out, *verify, 1, 1e-9); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "verified %d sampled output elements\n", *verify)
	}

	if *outPath == "" {
		return fastcc.WriteTNS(stdout, out)
	}
	return fastcc.SaveTNS(*outPath, out)
}

func parseModes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	modes := make([]int, 0, len(parts))
	for _, p := range parts {
		m, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad mode list %q: %v", s, err)
		}
		modes = append(modes, m)
	}
	return modes, nil
}
