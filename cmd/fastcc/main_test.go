package main

import (
	"path/filepath"
	"strings"
	"testing"

	"fastcc"
)

func writeTensor(t *testing.T, dir, name string, build func(*fastcc.Tensor)) string {
	t.Helper()
	tn := fastcc.NewTensor([]uint64{3, 3}, 4)
	build(tn)
	path := filepath.Join(dir, name)
	if err := fastcc.SaveTNS(path, tn); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMatrixMultiply(t *testing.T) {
	dir := t.TempDir()
	lp := writeTensor(t, dir, "l.tns", func(tn *fastcc.Tensor) {
		tn.Append([]uint64{0, 0}, 2)
		tn.Append([]uint64{1, 2}, 3)
	})
	rp := writeTensor(t, dir, "r.tns", func(tn *fastcc.Tensor) {
		tn.Append([]uint64{0, 1}, 4)
		tn.Append([]uint64{2, 2}, 5)
	})
	outPath := filepath.Join(dir, "o.tns")
	var stdout, stderr strings.Builder
	err := run([]string{
		"-left", lp, "-right", rp,
		"-ctr-left", "1", "-ctr-right", "0",
		"-out", outPath, "-stats", "-metrics", "-threads", "2",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fastcc.LoadTNS(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != 2 {
		t.Fatalf("output nnz=%d", out.NNZ())
	}
	if got := out.At([]uint64{0, 1}); got != 8 {
		t.Fatalf("O[0,1]=%g want 8", got)
	}
	if got := out.At([]uint64{1, 2}); got != 15 {
		t.Fatalf("O[1,2]=%g want 15", got)
	}
	if !strings.Contains(stderr.String(), "accumulator=") || !strings.Contains(stderr.String(), "counters:") {
		t.Fatalf("stats missing from stderr: %q", stderr.String())
	}
}

func TestRunSelfContractionToStdout(t *testing.T) {
	dir := t.TempDir()
	lp := writeTensor(t, dir, "l.tns", func(tn *fastcc.Tensor) {
		tn.Append([]uint64{0, 1}, 2)
		tn.Append([]uint64{2, 1}, 3)
	})
	var stdout, stderr strings.Builder
	if err := run([]string{"-left", lp, "-ctr-left", "1", "-accum", "sparse", "-platform", "desktop8"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	got, err := fastcc.ReadTNS(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Self-contraction over mode 1: O[i,i'] = Σ_j T[i,j]·T[i',j].
	if got.At([]uint64{0, 2}) != 6 || got.At([]uint64{0, 0}) != 4 {
		t.Fatalf("unexpected output:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	lp := writeTensor(t, dir, "l.tns", func(tn *fastcc.Tensor) {
		tn.Append([]uint64{0, 0}, 1)
	})
	cases := [][]string{
		{},            // missing required flags
		{"-left", lp}, // missing -ctr-left
		{"-left", dir + "/missing.tns", "-ctr-left", "0"},
		{"-left", lp, "-ctr-left", "x"},
		{"-left", lp, "-ctr-left", "0", "-accum", "bogus"},
		{"-left", lp, "-ctr-left", "0", "-platform", "bogus"},
		{"-left", lp, "-ctr-left", "9"}, // mode out of range
	}
	for i, args := range cases {
		var stdout, stderr strings.Builder
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("case %d (%v): want error", i, args)
		}
	}
}

func TestParseModes(t *testing.T) {
	got, err := parseModes("0, 2,3")
	if err != nil || len(got) != 3 || got[1] != 2 {
		t.Fatalf("parseModes: %v %v", got, err)
	}
	if _, err := parseModes(""); err == nil {
		t.Fatal("empty mode list should error")
	}
}

func TestRunWithVerify(t *testing.T) {
	dir := t.TempDir()
	lp := writeTensor(t, dir, "l.tns", func(tn *fastcc.Tensor) {
		tn.Append([]uint64{0, 0}, 2)
		tn.Append([]uint64{1, 1}, 3)
		tn.Append([]uint64{2, 1}, 4)
	})
	var stdout, stderr strings.Builder
	if err := run([]string{"-left", lp, "-ctr-left", "1", "-verify", "32"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "verified 32") {
		t.Fatalf("verify note missing: %q", stderr.String())
	}
}
